// Package shard scales digitaltraces horizontally inside one process: a
// Cluster hash-partitions entities across N independent digitaltraces.DB
// shards, routes ingest to each entity's owning shard, builds and refreshes
// all shards in parallel, and answers top-k queries by scatter-gather —
// resolve the query entity's visits on its home shard, fan the query out to
// every shard through the query-by-example path, and merge the per-shard
// exact answers into the global top-k.
//
// # Exactness
//
// Partitioning preserves the paper's exact-answer guarantee. The association
// degree between the query and a candidate depends only on their two ST-cell
// sequences, so each shard computes exact degrees for its own entities; and
// because every shard returns its local top-k under the same total order the
// single-DB search uses (degree descending, ties by ingest order), any
// entity a shard cuts from its local list is dominated by at least k
// entities from that shard alone and can never enter the global top-k.
// Merging the ≤ N·k candidates and truncating to k is therefore lossless:
// a Cluster returns bit-identical entities and degrees to a single DB over
// the same data — the invariant TestClusterExactness locks in for
// N ∈ {1, 2, 4, 8}.
//
// Placement itself is a versioned slot map rather than a fixed hash
// (slotmap.go): every query pins one map for its whole fan-out, filters
// every pulled candidate by that map's ownership, and treats shards whose
// local order a past migration disturbed as loose (uncapped, re-sorted under
// the global order) — so answers stay bit-identical before, during and after
// a live MigrateSlot, the invariant the migration property suite locks in.
//
// Two mechanical preconditions make the degree computations line up:
// every shard must share one epoch and time unit (NewCluster verifies this),
// and the fan-out must reproduce the query entity's stored cells exactly,
// which DB.VisitsOf / DB.TopKByExample guarantee by round-tripping the
// discretization.
//
// # Concurrency and locking
//
// Each shard is an independent DB, so the cluster has N independent
// synchronization domains instead of one: ingest for entity A only touches
// A's shard's ingest lock, and shard index builds run truly in parallel (the
// wall-clock build speedup cmd/bench records). Every shard serves queries
// from its own atomically swapped immutable index snapshot, so a
// scatter-gather query pins one frozen snapshot per shard for its whole
// fan-out and is never blocked by a shard rebuilding — a shard absorbing new
// data builds the next snapshot aside and swaps it in when done. The Cluster
// itself adds only a small mutex around the entity→ordinal routing registry;
// no query ever holds a global lock.
//
// A Cluster satisfies digitaltraces.Engine, so package server serves it with
// zero endpoint changes (cmd/serve -shards N).
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"digitaltraces"
	"digitaltraces/internal/mmap"
	"digitaltraces/internal/obs"
	"digitaltraces/internal/qcache"
)

// Config describes a cluster.
type Config struct {
	// Shards is the number of partitions (≥ 1).
	Shards int
	// NewShard builds the i-th empty shard. All shards must be constructed
	// over the same hierarchy with the same time unit and an explicit, shared
	// epoch (digitaltraces.WithEpoch, or a grid DB's implicit Unix epoch) so
	// that every shard discretizes a visit to the same ST-cells; NewCluster
	// rejects incompatible or pre-populated shards.
	NewShard func(i int) (*digitaltraces.DB, error)
	// Backends, when non-empty, supplies the shards directly instead of
	// Shards/NewShard — the network-distributed composition: each Backend is
	// typically a shard/remote.Client connected to a shard server process
	// (cmd/shardserve), though in-process DBs wrapped by Local mix in freely.
	// The same compatibility and emptiness rules apply: NewCluster verifies
	// one shared epoch, unit and hierarchy, and rejects pre-populated
	// backends — the coordinator's global arrival-order registry (which fixes
	// cross-shard degree-tie order) can only be built by routing all ingest
	// through the Cluster.
	Backends []Backend
	// CacheSize, when positive, equips the cluster with a generation-keyed
	// hot-query cache of that many entries: TopK/TopKByExample answers are
	// memoized under the vector of shard snapshot generations and served
	// without any fan-out while no shard's serving state has changed
	// (cache.go). Per-shard digitaltraces.WithQueryCache caches are
	// independent and unnecessary here — cluster queries stream through the
	// incremental search path, which bypasses them.
	CacheSize int
	// NaiveGather disables the threshold-pruned fan-out: every shard runs a
	// full local top-k and the lists are merged whole — the pre-pruning
	// design. Answers are bit-identical either way (the equivalence the
	// property suite locks in); the switch exists so cmd/bench -scenario
	// cache can A/B the two gathers on the same host and data.
	NaiveGather bool
	// InitialSlots, when non-nil, is the slot→shard assignment the cluster
	// starts from instead of the default s mod N table: NumSlots entries,
	// each a valid shard ordinal, applied (via AssignSlots) before anything
	// is ingested. This is the bootstrap hook for engineered placements —
	// deliberately skewed benchmark clusters, or a restored deployment
	// re-creating the map its envelope recorded before re-ingesting.
	InitialSlots []int
	// TraceSize, when positive, equips the cluster with a coordinator-level
	// query-trace ring of that many slots (internal/obs): every cluster
	// query records a structured trace with the per-shard scatter-gather
	// breakdown, served through Tracer() and the server's /traces endpoint.
	// ≤ 0 (the default) disables tracing — zero allocation on the hot path.
	TraceSize int
}

// Cluster is an entity-partitioned composition of DB shards answering exact
// top-k association queries. It satisfies digitaltraces.Engine; see the
// package comment for the exactness argument and the lock topology. Create
// one with NewCluster (empty) or Partition (from an existing DB).
type Cluster struct {
	shards []Backend

	// slots is the atomically published slot→shard routing table
	// (slotmap.go). Readers pin one map per operation; MigrateSlot and
	// AssignSlots publish successors under a bumped epoch.
	slots slotsPtr

	// slotMu is the per-slot ingest fence: AddVisit/AddVisits hold the read
	// side for each visited slot while routing, and MigrateSlot holds the
	// write side across ship-and-publish, so the entity state a move ships
	// is frozen and no visit lands on the old owner after the flip.
	slotMu [NumSlots]sync.RWMutex

	// mu guards ord, the global first-arrival ordinal per entity name. The
	// single-DB search breaks degree ties by entity ID — ingest order — so
	// the merge uses the cluster-wide arrival order for cross-shard ties to
	// reproduce single-DB answers bit-for-bit; ties within one shard follow
	// the shard's own order by construction of the k-way merge (merge.go).
	mu  sync.RWMutex
	ord map[string]int

	// cache is the cluster-level generation-keyed query cache (nil unless
	// Config.CacheSize > 0); see cache.go for the version-vector soundness
	// argument.
	cache *qcache.Cache[[]digitaltraces.Match]

	// naive switches TopK/TopKByExample to the unpruned full fan-out
	// (Config.NaiveGather) — the benchmarking A/B escape hatch.
	naive bool

	// tracer is the coordinator-level query-trace ring (nil unless
	// Config.TraceSize > 0); see trace.go.
	tracer *obs.Tracer

	// mappings holds the read-only envelope mappings opened by
	// LoadMappedIndex (guarded by mu); Close unmaps them after the shards.
	mappings []*mmap.Mapping
}

var (
	_ digitaltraces.Engine          = (*Cluster)(nil)
	_ digitaltraces.MappedPersister = (*Cluster)(nil)
)

// Local wraps an in-process DB as a Backend, for mixing library-held shards
// into a Config.Backends composition (NewCluster's Config.NewShard path wraps
// its DBs itself).
func Local(db *digitaltraces.DB) Backend { return local{db} }

// NewCluster creates an empty cluster of cfg.Shards shards (or over the
// supplied cfg.Backends — in-process DBs, remote shard clients, or a mix).
// Shards must be mutually compatible: same venue count, hierarchy height and
// time unit, and one shared epoch already fixed (an epoch inferred later from
// data would differ per shard and skew time discretization across the
// partition).
//
// On error, shards already constructed are Closed — a shard built with
// digitaltraces.WithAutoRefresh starts a background goroutine at
// construction, which would otherwise outlive the failed cluster.
func NewCluster(cfg Config) (_ *Cluster, err error) {
	var shards []Backend
	defer func() {
		if err == nil {
			return
		}
		for _, sh := range shards {
			sh.Close()
		}
	}()
	switch {
	case len(cfg.Backends) > 0:
		if cfg.NewShard != nil {
			return nil, fmt.Errorf("shard: Config.Backends and Config.NewShard are mutually exclusive")
		}
		if cfg.Shards != 0 && cfg.Shards != len(cfg.Backends) {
			return nil, fmt.Errorf("shard: Config.Shards = %d but %d backends were supplied", cfg.Shards, len(cfg.Backends))
		}
		for i, b := range cfg.Backends {
			if b == nil {
				return nil, fmt.Errorf("shard: Config.Backends[%d] is nil", i)
			}
		}
		shards = cfg.Backends
	case cfg.Shards < 1:
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", cfg.Shards)
	case cfg.NewShard == nil:
		return nil, fmt.Errorf("shard: Config.NewShard is nil")
	default:
		shards = make([]Backend, 0, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			db, err := cfg.NewShard(i)
			if err != nil {
				return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
			}
			if db == nil {
				return nil, fmt.Errorf("shard: NewShard(%d) returned nil", i)
			}
			shards = append(shards, local{db})
		}
	}
	epoch, ok := shards[0].Epoch()
	if !ok {
		return nil, fmt.Errorf("shard: shard 0 has no epoch; construct shards with digitaltraces.WithEpoch (or NewGridDB) so every shard discretizes time identically")
	}
	for i, sh := range shards {
		e, ok := sh.Epoch()
		if !ok || !e.Equal(epoch) {
			return nil, fmt.Errorf("shard: shard %d epoch %v (set=%t) differs from shard 0 epoch %v", i, e, ok, epoch)
		}
		if sh.TimeUnit() != shards[0].TimeUnit() {
			return nil, fmt.Errorf("shard: shard %d time unit %v differs from shard 0's %v", i, sh.TimeUnit(), shards[0].TimeUnit())
		}
		if sh.NumVenues() != shards[0].NumVenues() || sh.Levels() != shards[0].Levels() {
			return nil, fmt.Errorf("shard: shard %d hierarchy (%d venues, %d levels) differs from shard 0 (%d venues, %d levels)",
				i, sh.NumVenues(), sh.Levels(), shards[0].NumVenues(), shards[0].Levels())
		}
		if sh.NumEntities() != 0 {
			return nil, fmt.Errorf("shard: shard %d is pre-populated with %d entities; route all ingest through the Cluster", i, sh.NumEntities())
		}
	}
	c := &Cluster{shards: shards, ord: map[string]int{}, naive: cfg.NaiveGather, tracer: obs.New(cfg.TraceSize)}
	c.slots.Store(DefaultSlotMap(len(shards)))
	if cfg.InitialSlots != nil {
		if err := c.AssignSlots(cfg.InitialSlots); err != nil {
			return nil, err
		}
	}
	if cfg.CacheSize > 0 {
		c.cache = qcache.New[[]digitaltraces.Match](cfg.CacheSize)
	}
	return c, nil
}

// Partition splits a populated single DB into a cluster by replaying its
// full visit log (DB.AllVisits) through the router. Replay preserves the
// source DB's entity ingest order, so the cluster's degree-tie-breaking —
// and therefore every top-k answer — matches the source bit-for-bit.
// cfg.NewShard must build shards compatible with src (same hierarchy, epoch
// and unit; digitaltraces.NewGridDB with src's grid parameters for synthetic
// cities and tracegen record files).
func Partition(src *digitaltraces.DB, cfg Config) (_ *Cluster, err error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			c.Close() // stop any per-shard auto-refresh goroutines
		}
	}()
	// The shards must discretize src's visits to the same ST-cells, or the
	// replay silently changes every degree; fail loudly instead.
	s0 := c.shards[0]
	if e, ok := src.Epoch(); ok {
		if se, _ := s0.Epoch(); !se.Equal(e) {
			return nil, fmt.Errorf("shard: shard epoch %v differs from source epoch %v — NewShard must reproduce the source DB's epoch", se, e)
		}
	}
	if src.TimeUnit() != s0.TimeUnit() {
		return nil, fmt.Errorf("shard: shard time unit %v differs from source's %v", s0.TimeUnit(), src.TimeUnit())
	}
	if src.NumVenues() != s0.NumVenues() || src.Levels() != s0.Levels() {
		return nil, fmt.Errorf("shard: shard hierarchy (%d venues, %d levels) differs from source (%d venues, %d levels)",
			s0.NumVenues(), s0.Levels(), src.NumVenues(), src.Levels())
	}
	if _, err := c.AddVisits(src.AllVisits()); err != nil {
		return nil, fmt.Errorf("shard: partitioning source DB: %w", err)
	}
	return c, nil
}

// AddVisit records one visit, routed to the entity's owning shard under the
// current slot map. Only that entity's slot fence (read side, shared with
// all concurrent ingest) and the owning shard's locks are taken, so ingest
// for different shards — and different slots — proceeds in parallel; a
// migration of this entity's slot briefly blocks the visit until the new
// owner is published, which is what keeps the shipped state complete.
func (c *Cluster) AddVisit(entity, venue string, start, end time.Time) error {
	slot := SlotOf(entity)
	c.slotMu[slot].RLock()
	defer c.slotMu[slot].RUnlock()
	// Resolve the map only after the fence: a migration publishes its new
	// map while holding the write side, so a post-fence read can never see
	// an owner the migration is about to drain.
	sm := c.slotmap()
	c.register([]string{entity})
	return c.shards[sm.assign[slot]].AddVisit(entity, venue, start, end)
}

// AddVisits bulk-ingests visits: records are grouped by owning shard
// (preserving arrival order within each group) and the groups are forwarded
// in parallel, one ingest-lock acquisition per shard. It returns the total
// number of visits stored.
//
// Partial-failure semantics are per shard: each shard keeps the prefix of
// its group before its first failing record (exactly DB.AddVisits), so —
// unlike a single DB — records routed to other shards after the failing
// one are still stored. The returned error names the failing record's index
// in the original slice (the smallest, if several shards failed). Entity
// ordinals are reserved at arrival even for records that then fail
// validation; this only matters for degree-tie order and only if the same
// new entities are later replayed to a single DB in a different order.
func (c *Cluster) AddVisits(visits []digitaltraces.VisitRecord) (int, error) {
	n := len(c.shards)
	// Fence every slot this batch touches (read side, ascending slot order
	// so concurrent batches and MigrateSlot's single write lock can't
	// deadlock), then resolve the routing map: the whole batch routes under
	// one map version, and no slot in it can migrate mid-dispatch.
	var inBatch [NumSlots]bool
	for _, v := range visits {
		inBatch[SlotOf(v.Entity)] = true
	}
	for s := range inBatch {
		if inBatch[s] {
			c.slotMu[s].RLock()
			defer c.slotMu[s].RUnlock()
		}
	}
	sm := c.slotmap()
	groups := make([][]digitaltraces.VisitRecord, n)
	origIdx := make([][]int, n)
	names := make([]string, len(visits))
	for i, v := range visits {
		s := sm.Owner(v.Entity)
		groups[s] = append(groups[s], v)
		origIdx[s] = append(origIdx[s], i)
		names[i] = v.Entity
	}
	c.register(names)
	counts := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range c.shards {
		if len(groups[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			counts[s], errs[s] = c.shards[s].AddVisits(groups[s])
		}(s)
	}
	wg.Wait()
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	failIdx := -1
	var failErr error
	for s, err := range errs {
		if err == nil {
			continue
		}
		oi := origIdx[s][counts[s]] // the shard stored counts[s] records, so its group's counts[s]-th failed
		if failIdx == -1 || oi < failIdx {
			failIdx, failErr = oi, err
		}
	}
	if failErr != nil {
		if inner := errors.Unwrap(failErr); inner != nil {
			failErr = inner // strip the shard-local "visit %d" wrapper
		}
		return total, fmt.Errorf("visit %d: %w", failIdx, failErr)
	}
	return total, nil
}

// TopK returns the k entities most closely associated with the named entity,
// with exact degrees: the entity's visits are resolved once on its home
// shard, and every shard — home included — ranks its own entities against
// that one snapshot through the incremental query-by-example search, so the
// merged answer never mixes two states of the query entity even when a
// writer races the query. The fan-out is threshold-pruned (gather.go): the
// coordinator pulls per-shard results in doubling rounds and stops pulling
// from a shard once the merged k-th degree strictly dominates that shard's
// remainder bound, so shards whose candidates are quickly dominated never
// run a full local top-k — while the answer stays bit-identical to the
// naive full fan-out (TestGatherEquivalence) and to a single DB
// (TestClusterExactness). The query entity itself is excluded during the
// merge. Stats aggregate across shards: Checked sums the exact degree
// computations actually performed and PE/Pruned are recomputed over the
// cluster-wide population, so they are comparable with single-DB numbers.
//
// With Config.CacheSize set, repeat queries against an unchanged cluster
// (same shard snapshot generations, nothing dirty) are answered from the
// cluster cache with no fan-out at all, QueryStats.CacheHit set.
func (c *Cluster) TopK(entity string, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	return c.topKTraced(entity, k, 0)
}

// topKTraced is TopK with trace linkage: batchID groups the item traces of
// one TopKBatch call (0 outside a batch).
func (c *Cluster) topKTraced(entity string, k int, batchID uint64) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	start := time.Now()
	out, qs, d, err := c.topKDetail(entity, k, start)
	c.record(obs.KindTopK, entity, k, batchID, out, qs, d, err, start)
	return out, qs, err
}

func (c *Cluster) topKDetail(entity string, k int, start time.Time) ([]digitaltraces.Match, digitaltraces.QueryStats, gatherDetail, error) {
	if k < 1 {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, fmt.Errorf("shard: k = %d < 1", k)
	}
	// Pin one slot map for the whole query: home resolution, the per-pull
	// ownership filter and the loose-stream decision all read this map, so
	// a migration publishing mid-query can never split the query's view of
	// who owns what (slotmap.go's exactness argument).
	sm := c.slotmap()
	homeOrd := sm.Owner(entity)
	home := c.shards[homeOrd]
	// The version vector is derived on both sides of the visits resolve
	// (the home shard's OpenSearchEntity below): generations only grow and
	// an unfolded ingest leaves its shard dirty, so an identical usable
	// vector before and after proves the visits are exactly the entity's
	// state at that version. Pinning the version only after the resolve
	// would let an ingest for this entity land in between and fold before
	// the pin — the searches would then agree with the new generation and
	// cachePut would store an answer computed from stale visits under it, a
	// wrong hit served until the next bump. (A cache hit needs no visits at
	// all, so the lookup happens first; a miss for an unknown entity still
	// errors below, since unknown entities are never cached.)
	version, versionOK := c.cacheVersion()
	key := entityCacheKey(entity, k)
	if out, qs, ok := c.cacheGet(version, versionOK, key, start); ok {
		return out, qs, gatherDetail{generations: versionGenerations(version)}, nil
	}
	if c.naive {
		out, qs, d, err := c.topKNaiveDetail(entity, k)
		if err != nil {
			return nil, qs, d, err
		}
		c.naiveCachePut(version, versionOK, key, out)
		return out, qs, d, nil
	}
	// Resolve the entity's visits and open its home-shard stream in one
	// call (one round trip on a remote home shard), then fan the same visit
	// snapshot out to every sibling — the merged answer never mixes two
	// states of the query entity even when a writer races the query.
	visits, homeStream, err := home.OpenSearchEntity(entity)
	if err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	byShard, err := c.openSearches(homeOrd, homeStream, visits)
	if err != nil {
		homeStream.Close()
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	defer closeStreams(byShard)
	if err := c.checkSlotEpoch(); err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	if versionOK {
		// Re-derive after every stream is open: on remote shards the open
		// responses refreshed the client-side state this reads.
		if after, ok := c.cacheVersion(); !ok || after != version {
			versionOK = false
		}
	}
	out, checked, d, err := c.gatherByShard(sm, byShard, k, entity)
	if err != nil {
		return nil, digitaltraces.QueryStats{}, d, err
	}
	d.generations = searchGenerations(byShard)
	c.cachePut(version, versionOK, byShard, key, out)
	return out, c.gatherStats(checked, len(out), c.NumEntities()-1, start, d), d, nil
}

// TopKByExample answers for a hypothetical entity described by visits,
// fanning the example out to every shard through the same threshold-pruned
// gather as TopK, with no self to exclude.
func (c *Cluster) TopKByExample(visits []digitaltraces.Visit, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	start := time.Now()
	out, qs, d, err := c.topKByExampleDetail(visits, k, start)
	c.record(obs.KindExample, "", k, 0, out, qs, d, err, start)
	return out, qs, err
}

func (c *Cluster) topKByExampleDetail(visits []digitaltraces.Visit, k int, start time.Time) ([]digitaltraces.Match, digitaltraces.QueryStats, gatherDetail, error) {
	if k < 1 {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, fmt.Errorf("shard: k = %d < 1", k)
	}
	sm := c.slotmap()
	version, versionOK := c.cacheVersion()
	key := exampleCacheKey(visits, k)
	if out, qs, ok := c.cacheGet(version, versionOK, key, start); ok {
		return out, qs, gatherDetail{generations: versionGenerations(version)}, nil
	}
	if c.naive {
		out, qs, d, err := c.topKByExampleNaiveDetail(visits, k)
		if err != nil {
			return nil, qs, d, err
		}
		c.naiveCachePut(version, versionOK, key, out)
		return out, qs, d, nil
	}
	byShard, err := c.openSearches(-1, nil, visits)
	if err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	defer closeStreams(byShard)
	if err := c.checkSlotEpoch(); err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	out, checked, d, err := c.gatherByShard(sm, byShard, k, "")
	if err != nil {
		return nil, digitaltraces.QueryStats{}, d, err
	}
	d.generations = searchGenerations(byShard)
	c.cachePut(version, versionOK, byShard, key, out)
	return out, c.gatherStats(checked, len(out), c.NumEntities(), start, d), d, nil
}

// topKNaive is the pre-pruning reference fan-out: every shard computes a
// full local top-k (k+1 on the home shard, whose example search ranks the
// query entity itself) and the lists are merged whole. Kept unexported as
// the oracle the property and equivalence tests compare the pruned path
// against — both must return bit-identical answers.
func (c *Cluster) topKNaive(entity string, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	out, qs, _, err := c.topKNaiveDetail(entity, k)
	return out, qs, err
}

func (c *Cluster) topKNaiveDetail(entity string, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, gatherDetail, error) {
	start := time.Now()
	if k < 1 {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, fmt.Errorf("shard: k = %d < 1", k)
	}
	sm := c.slotmap()
	homeOrd := sm.Owner(entity)
	visits, err := c.shards[homeOrd].VisitsOf(entity)
	if err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	lists, d, checked, err := c.scatter(func(i int, sh Backend) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
		K := k
		if i == homeOrd {
			K = k + 1 // the home example search ranks the query entity itself
		}
		return c.naiveLocalTopK(i, sh, sm, visits, K)
	})
	if err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	mergeStart := time.Now()
	out, excluded := c.mergeExcluding(lists, k, entity)
	d.merge = time.Since(mergeStart)
	if len(out) == k && k > 0 {
		d.kth = out[k-1].Degree
	}
	// The home shard's example search scored the query entity itself (a
	// single DB never does); subtract it so Checked/PE/Pruned stay
	// comparable with single-DB numbers.
	checked -= excluded
	return out, c.gatherStats(checked, len(out), c.NumEntities()-1, start, d), d, nil
}

// topKByExampleNaive is TopKByExample's full-fan-out reference; see
// topKNaive.
func (c *Cluster) topKByExampleNaive(visits []digitaltraces.Visit, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	out, qs, _, err := c.topKByExampleNaiveDetail(visits, k)
	return out, qs, err
}

func (c *Cluster) topKByExampleNaiveDetail(visits []digitaltraces.Visit, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, gatherDetail, error) {
	start := time.Now()
	sm := c.slotmap()
	lists, d, checked, err := c.scatter(func(i int, sh Backend) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
		return c.naiveLocalTopK(i, sh, sm, visits, k)
	})
	if err != nil {
		return nil, digitaltraces.QueryStats{}, gatherDetail{}, err
	}
	mergeStart := time.Now()
	out := c.merge(lists, k)
	d.merge = time.Since(mergeStart)
	if len(out) == k && k > 0 {
		d.kth = out[k-1].Degree
	}
	return out, c.gatherStats(checked, len(out), c.NumEntities(), start, d), d, nil
}

// naiveLocalTopK is one shard's share of a naive scatter under the pinned
// slot map sm: the shard's local top-K restricted to the entities sm says it
// owns. On an untouched shard the plain TopKByExample list is simply
// filtered — foreign copies only appear there when a migration ship races
// this very query, and if the filter dropped anything from a full
// (truncated) list the truncation may have hidden owned candidates, so that
// rare case falls through to the loose fetch. On a touched shard local
// order and local truncation are both unreliable, so the loose fetch runs
// directly.
func (c *Cluster) naiveLocalTopK(i int, sh Backend, sm *SlotMap, visits []digitaltraces.Visit, K int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	if !sm.touched[i] {
		ms, qs, err := sh.TopKByExample(visits, K)
		if err != nil {
			return nil, qs, err
		}
		owned := ms[:0:0]
		for _, m := range ms {
			if sm.Owner(m.Entity) == i {
				owned = append(owned, m)
			}
		}
		if len(owned) == len(ms) || len(ms) < K {
			// Nothing foreign, or the shard ran dry before K — the filtered
			// list is the shard's complete owned top-K, still in the shard's
			// exact (aligned) order.
			return owned, qs, nil
		}
	}
	return c.looseLocalTopK(i, sh, sm, visits, K)
}

// looseLocalTopK computes a touched shard's owned top-K through the stream
// interface: pull in doubling batches until K *owned* results are pulled and
// the stream's bound is strictly below the K-th owned degree (or the stream
// runs dry) — so every unpulled entity is strictly dominated by K owned
// entities of this shard alone and can never reach the global top-k — then
// sort the owned results under the global total order, repairing the local
// ID misalignment a migration left behind.
func (c *Cluster) looseLocalTopK(i int, sh Backend, sm *SlotMap, visits []digitaltraces.Visit, K int) ([]digitaltraces.Match, digitaltraces.QueryStats, error) {
	begin := time.Now()
	st, err := sh.OpenSearch(visits)
	if err != nil {
		return nil, digitaltraces.QueryStats{}, err
	}
	defer st.Close()
	var owned []entry
	bound := 1.0
	live := true
	batch := K
	for live && (len(owned) < K || bound >= owned[K-1].m.Degree) {
		ms, b, more, err := st.Pull(batch)
		if err != nil {
			return nil, digitaltraces.QueryStats{}, err
		}
		for _, m := range ms {
			if sm.Owner(m.Entity) == i {
				owned = append(owned, entry{m: m})
			}
		}
		bound, live = b, more
		if len(ms) == 0 {
			live = false
		}
		batch *= 2
	}
	c.mu.RLock()
	for j := range owned {
		owned[j].rank = c.rankLocked(owned[j].m.Entity)
	}
	c.mu.RUnlock()
	sort.SliceStable(owned, func(a, b int) bool { return entryBefore(owned[a], owned[b]) })
	if len(owned) > K {
		owned = owned[:K]
	}
	out := make([]digitaltraces.Match, len(owned))
	for j, e := range owned {
		out[j] = e.m
	}
	return out, digitaltraces.QueryStats{Checked: st.Checked(), Elapsed: time.Since(begin)}, nil
}

// openSearches opens one incremental search stream per non-empty shard, in
// parallel (opening may fold a shard's dirt, so the builds overlap like
// scatter's searches did; on remote shards the opens are concurrent round
// trips). A pre-opened home stream (TopK's combined resolve-and-open) slots
// in at homeOrd; pass homeOrd = -1 for the example path. The result is
// aligned to c.shards, nil for shards that held no entities — cache.go
// renders the generation vector from it, and gatherByShard compacts it for
// the bounded merge. On error every stream opened here is closed (not the
// caller's pre-opened one).
func (c *Cluster) openSearches(homeOrd int, homeStream Stream, visits []digitaltraces.Visit) ([]Stream, error) {
	byShard := make([]Stream, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	opened := 0
	for i, sh := range c.shards {
		if i == homeOrd {
			byShard[i] = homeStream
			opened++
			continue
		}
		if sh.NumEntities() == 0 {
			continue // an empty shard has no candidates (and no index to search)
		}
		opened++
		wg.Add(1)
		go func(i int, sh Backend) {
			defer wg.Done()
			byShard[i], errs[i] = sh.OpenSearch(visits)
		}(i, sh)
	}
	if opened == 0 {
		return nil, fmt.Errorf("shard: cluster has no visits to index")
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for j, s := range byShard {
				if s != nil && j != homeOrd {
					s.Close()
				}
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return byShard, nil
}

// gatherByShard compacts an openSearches result, runs the threshold-pruned
// gather over the active streams under the query's pinned slot map, and maps
// the stream-indexed report back to shard ordinals for the trace detail.
func (c *Cluster) gatherByShard(sm *SlotMap, byShard []Stream, k int, exclude string) ([]digitaltraces.Match, int, gatherDetail, error) {
	active := make([]Stream, 0, len(byShard))
	ords := make([]int, 0, len(byShard))
	for i, s := range byShard {
		if s != nil {
			active = append(active, s)
			ords = append(ords, i)
		}
	}
	out, checked, rep, err := c.gatherSearches(sm, active, ords, k, exclude)
	if err != nil {
		return nil, 0, gatherDetail{}, err
	}
	return out, checked, detailFromReport(rep, ords, active), nil
}

// TopKBatch answers top-k for every named entity over a bounded worker pool
// (workers ≤ 0 selects GOMAXPROCS); each query scatter-gathers across all
// shards independently. Results are identical to issuing TopK per entity.
// Aggregate stats follow DB.TopKBatch: Checked sums degree computations,
// PE averages the per-query pruning effectiveness, Pruned is the batch-wide
// pruned fraction over the cluster population.
func (c *Cluster) TopKBatch(entities []string, k, workers int) (map[string][]digitaltraces.Match, digitaltraces.QueryStats, error) {
	start := time.Now()
	if len(entities) == 0 {
		return nil, digitaltraces.QueryStats{}, fmt.Errorf("shard: empty batch query set")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type result struct {
		ms  []digitaltraces.Match
		qs  digitaltraces.QueryStats
		err error
	}
	results := make([]result, len(entities))
	// Each batch item records its own trace, linked by one shared batch ID
	// (0 — no linkage — when tracing is off).
	batchID := c.tracer.NextBatchID()
	runPool(len(entities), workers, func(i int) {
		ms, qs, err := c.topKTraced(entities[i], k, batchID)
		results[i] = result{ms, qs, err}
	})
	out := make(map[string][]digitaltraces.Match, len(entities))
	var stats digitaltraces.QueryStats
	var peSum float64
	for i, r := range results {
		if r.err != nil {
			return nil, digitaltraces.QueryStats{}, r.err
		}
		out[entities[i]] = r.ms
		stats.Checked += r.qs.Checked
		peSum += r.qs.PE
	}
	stats.PE = peSum / float64(len(entities))
	if n := c.NumEntities() - 1; n > 0 {
		stats.Pruned = 1 - float64(stats.Checked)/float64(len(entities)*n)
	}
	stats.Elapsed = time.Since(start)
	// The whole batch is histogram-only; the per-item traces above carry
	// the structured detail.
	c.tracer.Observe(obs.KindBatch, stats.Elapsed)
	return out, stats, nil
}

// scatter runs query against every shard that holds entities, concurrently,
// and collects the per-shard match lists, the per-shard trace detail
// (generation vector included) and the summed Checked count. The first
// error (by shard index) wins. Naive scatter rows report Rounds 1 and
// neither Cut nor Exhausted — the shard itself truncated at its local k.
func (c *Cluster) scatter(query func(i int, sh Backend) ([]digitaltraces.Match, digitaltraces.QueryStats, error)) ([][]digitaltraces.Match, gatherDetail, int, error) {
	lists := make([][]digitaltraces.Match, len(c.shards))
	statsArr := make([]digitaltraces.QueryStats, len(c.shards))
	gens := make([]uint64, len(c.shards))
	errs := make([]error, len(c.shards))
	queriedBy := make([]bool, len(c.shards))
	var wg sync.WaitGroup
	queried := 0
	for i, sh := range c.shards {
		if sh.NumEntities() == 0 {
			continue // an empty shard has no candidates (and no index to search)
		}
		queried++
		queriedBy[i] = true
		wg.Add(1)
		go func(i int, sh Backend) {
			defer wg.Done()
			lists[i], statsArr[i], errs[i] = query(i, sh)
			gens[i], _ = sh.SnapshotGeneration()
		}(i, sh)
	}
	if queried == 0 {
		return nil, gatherDetail{}, 0, fmt.Errorf("shard: cluster has no visits to index")
	}
	wg.Wait()
	d := gatherDetail{generations: gens, shards: make([]obs.ShardTrace, 0, queried)}
	checked := 0
	for i := range c.shards {
		if errs[i] != nil {
			return nil, gatherDetail{}, 0, errs[i]
		}
		if !queriedBy[i] {
			continue
		}
		checked += statsArr[i].Checked
		d.pulled += len(lists[i])
		d.shards = append(d.shards, obs.ShardTrace{
			Shard:      i,
			Generation: gens[i],
			Pulled:     len(lists[i]),
			Rounds:     1,
			Checked:    statsArr[i].Checked,
			Latency:    statsArr[i].Elapsed,
		})
	}
	return lists, d, checked, nil
}

// gatherStats recomputes the Definition 5 statistics over the cluster-wide
// candidate population n, mirroring the single-DB formulas, and carries the
// gather detail's fan-out shape (shards touched, candidates pulled, merge
// time — the merge/scatter attribution split) into the QueryStats.
func (c *Cluster) gatherStats(checked, returned, n int, start time.Time, d gatherDetail) digitaltraces.QueryStats {
	qs := digitaltraces.QueryStats{
		Checked: checked,
		Elapsed: time.Since(start),
		Shards:  len(d.shards),
		Pulled:  d.pulled,
		Merge:   d.merge,
	}
	if n > 0 {
		qs.PE = float64(checked-returned) / float64(n)
		if qs.PE < 0 {
			qs.PE = 0
		}
		qs.Pruned = 1 - float64(checked)/float64(n)
	}
	return qs
}

// NumShards returns the number of partitions.
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumEntities returns the cluster-wide entity count: the size of the global
// arrival registry. Summing per-shard counts would double-count after a
// migration — the source shard keeps its stale copies forever — while every
// entity registers exactly once however its slot moves.
func (c *Cluster) NumEntities() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ord)
}

// NumVenues returns the number of venues. NewCluster verified the value is
// identical on every shard, so any member answers for the cluster — the
// first one, local or remote, is asked through the Backend seam rather than
// assuming an in-process shard 0. A zero-value Cluster reports 0.
func (c *Cluster) NumVenues() int {
	if len(c.shards) == 0 {
		return 0
	}
	return c.shards[0].NumVenues()
}

// Levels returns the hierarchy height (identical on every shard, like
// NumVenues). A zero-value Cluster reports 0.
func (c *Cluster) Levels() int {
	if len(c.shards) == 0 {
		return 0
	}
	return c.shards[0].Levels()
}

// IndexStats returns cluster totals: sums of every shard's index shape,
// snapshot generation (total swaps cluster-wide) and dirty count (entities
// awaiting a fold anywhere in the cluster), except BuildTime and
// LastRefreshDuration — the slowest shard's, the parallel critical path a
// machine with ≥ NumShards cores sees — and LastSwap, the latest shard swap
// (when the cluster's serving state last changed anywhere).
func (c *Cluster) IndexStats() digitaltraces.IndexStats {
	agg := digitaltraces.IndexStats{Latencies: c.tracer.Summaries()}
	if c.cache != nil {
		cs := c.cache.Stats()
		agg.CacheHits = cs.Hits
		agg.CacheMisses = cs.Misses
		agg.CacheEvictions = cs.Evictions
		agg.CacheEntries = cs.Entries
	}
	for _, sh := range c.shards {
		s := sh.IndexStats()
		agg.Entities += s.Entities
		agg.Nodes += s.Nodes
		agg.Leaves += s.Leaves
		agg.MemoryBytes += s.MemoryBytes
		agg.Generation += s.Generation
		agg.DirtyCount += s.DirtyCount
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.CacheEvictions += s.CacheEvictions
		agg.CacheEntries += s.CacheEntries
		if s.Mapped {
			agg.Mapped = true
		}
		agg.PoolHits += s.PoolHits
		agg.PoolMisses += s.PoolMisses
		if s.BuildTime > agg.BuildTime {
			agg.BuildTime = s.BuildTime
		}
		if s.LastRefreshDuration > agg.LastRefreshDuration {
			agg.LastRefreshDuration = s.LastRefreshDuration
		}
		if s.LastSwap.After(agg.LastSwap) {
			agg.LastSwap = s.LastSwap
		}
	}
	return agg
}

// Close closes every shard, stopping any per-shard background auto-refresh
// goroutines (shards constructed with digitaltraces.WithAutoRefresh fold
// their own partitions' dirt independently), then unmaps any cluster envelope
// opened by LoadMappedIndex — after the shards, since their snapshots read
// through it. Idempotent, like DB.Close; a mapped cluster must not be
// queried after Close.
func (c *Cluster) Close() error {
	var errs []error
	for i, sh := range c.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	c.mu.Lock()
	maps := c.mappings
	c.mappings = nil
	c.mu.Unlock()
	for _, m := range maps {
		m.Close()
	}
	return errors.Join(errs...)
}

// ShardStat describes one shard, for partition-skew monitoring: how many
// entities the shard physically holds (stale migrated-away copies included),
// how many it currently owns under the slot map, how many slots route to it,
// and the shape of its built index.
type ShardStat struct {
	Shard    int                      // shard ordinal
	Entities int                      // entities physically on this shard (incl. stale copies)
	Owned    int                      // entities the current slot map assigns here
	Slots    int                      // slots the current slot map assigns here
	Index    digitaltraces.IndexStats // built-index shape (zero before build)
}

// ShardStats returns per-shard statistics, in shard order. The server's
// /stats endpoint exposes these so operators can spot partition skew; the
// Rebalance planner reads the same Owned counts to repair it.
func (c *Cluster) ShardStats() []ShardStat {
	slots := c.slotsOwned()
	loads := c.SlotLoads()
	sm := c.slotmap()
	owned := make([]int, len(c.shards))
	for s, cnt := range loads {
		owned[sm.assign[s]] += cnt
	}
	out := make([]ShardStat, len(c.shards))
	for i, sh := range c.shards {
		out[i] = ShardStat{Shard: i, Entities: sh.NumEntities(), Owned: owned[i], Slots: slots[i], Index: sh.IndexStats()}
	}
	return out
}
