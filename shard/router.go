package shard

// The router decides which shard owns an entity and remembers the order
// entities first arrived. Ownership is two-level (slotmap.go): the stable
// FNV-1a hash places an entity in one of 256 fixed slots, and the cluster's
// versioned slot map assigns each slot to a shard — so placement is still
// computable by any process holding the (tiny) current map, but the map can
// change: MigrateSlot moves a slot's entities to another shard and publishes
// a new map under a bumped epoch. The arrival order is the cluster-wide
// substitute for the single DB's entity-ID assignment order, used only to
// break exact-degree ties across shards deterministically; it is placement-
// independent, which is why answers stay bit-identical across migrations.

import "fmt"

// OwnerOf is the legacy direct entity→shard hash: 32-bit FNV-1a over the raw
// name bytes (offset basis 2166136261, prime 16777619), mod the shard count.
// Routing no longer uses it — ownership goes entity → SlotOf → SlotMap — but
// the function remains exported as the fixed-point reference: for shard
// counts dividing NumSlots, DefaultSlotMap(n).Owner(e) == OwnerOf(e, n), the
// compatibility contract that lets pre-slot-map envelopes re-ingest onto the
// shards that saved them. Panics if shards < 1, like an out-of-range slice
// index would.
func OwnerOf(entity string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	if shards < 1 {
		panic(fmt.Sprintf("shard: OwnerOf with %d shards", shards))
	}
	h := uint32(offset32)
	for i := 0; i < len(entity); i++ {
		h ^= uint32(entity[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// owner returns the shard index owning the entity under the current slot
// map. Callers that must correlate routing with filtering pin one map via
// c.slotmap() and use its Owner directly.
func (c *Cluster) owner(entity string) int { return c.slotmap().Owner(entity) }

// register assigns global first-arrival ordinals to any names not seen
// before, in slice order, under one lock acquisition.
func (c *Cluster) register(names []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		if _, ok := c.ord[name]; !ok {
			c.ord[name] = len(c.ord)
		}
	}
}
