package shard

// The router decides which shard owns an entity and remembers the order
// entities first arrived. Ownership is pure hashing — any process that knows
// the shard count can compute it, which is what a future multi-node
// deployment needs to route client-side. The arrival order is the
// cluster-wide substitute for the single DB's entity-ID assignment order,
// used only to break exact-degree ties across shards deterministically
// (ties within one shard follow that shard's own order — the k-way merge
// never reorders within a list; see merge.go).

import "fmt"

// OwnerOf routes an entity name to a shard ordinal: 32-bit FNV-1a over the
// raw name bytes (offset basis 2166136261, prime 16777619), mod the shard
// count. The function is a stability contract, not an implementation detail:
// FNV-1a is fixed across processes, platforms, architectures and Go versions
// (unlike the runtime's per-process-seeded map hash), so any client,
// coordinator or shard server that knows the cluster's shard count computes
// the same placement with no lookup hop — which is what lets a distributed
// deployment route ingest and queries client-side. Changing this mapping
// (or the shard count) reshuffles entity ownership and invalidates every
// saved cluster envelope, so it must never change for shards ≥ 1.
// Panics if shards < 1, like an out-of-range slice index would.
func OwnerOf(entity string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	if shards < 1 {
		panic(fmt.Sprintf("shard: OwnerOf with %d shards", shards))
	}
	h := uint32(offset32)
	for i := 0; i < len(entity); i++ {
		h ^= uint32(entity[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// owner returns the shard index owning the entity.
func (c *Cluster) owner(entity string) int { return OwnerOf(entity, len(c.shards)) }

// register assigns global first-arrival ordinals to any names not seen
// before, in slice order, under one lock acquisition.
func (c *Cluster) register(names []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		if _, ok := c.ord[name]; !ok {
			c.ord[name] = len(c.ord)
		}
	}
}
