package shard

// The router decides which shard owns an entity and remembers the order
// entities first arrived. Ownership is pure hashing — any process that knows
// the shard count can compute it, which is what a future multi-node
// deployment needs to route client-side. The arrival order is the
// cluster-wide substitute for the single DB's entity-ID assignment order,
// used only to break exact-degree ties across shards deterministically
// (ties within one shard follow that shard's own order — the k-way merge
// never reorders within a list; see merge.go).

// ownerOf routes an entity name to a shard: FNV-1a over the name, mod the
// shard count. FNV-1a is stable across processes, platforms and Go versions
// (unlike the runtime's seeded map hash), so a given entity always lands on
// the same shard for a given cluster size.
func ownerOf(entity string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(entity); i++ {
		h ^= uint32(entity[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// owner returns the shard index owning the entity.
func (c *Cluster) owner(entity string) int { return ownerOf(entity, len(c.shards)) }

// register assigns global first-arrival ordinals to any names not seen
// before, in slice order, under one lock acquisition.
func (c *Cluster) register(names []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		if _, ok := c.ord[name]; !ok {
			c.ord[name] = len(c.ord)
		}
	}
}
