package shard

// The Backend seam: everything a Cluster asks of one shard, expressed as an
// interface so the shard can live in this process (a *digitaltraces.DB behind
// the local adapter) or in another one (shard/remote's Client speaking the
// pull-based search protocol over HTTP). The Cluster's exactness argument is
// entirely in terms of this contract — per-shard exact rank order, admissible
// bounds, shared discretization parameters — so composing remote shards
// preserves bit-identical answers as long as each implementation honors it.
//
// The search half is deliberately *pull-batched* rather than item-at-a-time:
// Stream.Pull(want) surrenders up to want ranked results and the bound after
// them in one call, so an entire gather round against a remote shard costs
// one network round trip, not want of them. The local adapter simply loops
// digitaltraces.Search.Next under the same contract.

import (
	"io"
	"time"

	"digitaltraces"
)

// Backend is one shard of a Cluster: an engine holding one entity partition.
// *digitaltraces.DB satisfies it through the local adapter (NewCluster's
// Config.NewShard path); shard/remote.Client satisfies it over the network
// (Config.Backends). All implementations must share the cluster's epoch,
// time unit and venue hierarchy — NewCluster verifies — so every member
// discretizes a visit to the same ST-cells.
type Backend interface {
	// AddVisit and AddVisits ingest, with the single-DB partial-failure
	// contract: the count is authoritative, the error names the failing
	// record's index within the slice.
	AddVisit(entity, venue string, start, end time.Time) error
	AddVisits(visits []digitaltraces.VisitRecord) (int, error)
	// VisitsOf resolves an entity's visits with the exact round-tripping
	// discretization guarantee of digitaltraces.DB.VisitsOf.
	VisitsOf(entity string) ([]digitaltraces.Visit, error)
	// OpenSearch opens an incremental exact-rank stream for a hypothetical
	// entity described by visits, pinned to one immutable index snapshot.
	OpenSearch(visits []digitaltraces.Visit) (Stream, error)
	// OpenSearchEntity resolves the named entity's visits and opens a stream
	// over them in one call — one round trip on a remote shard — returning
	// the visits so the coordinator can fan the same snapshot out to sibling
	// shards (TopK must never mix two states of the query entity).
	OpenSearchEntity(entity string) ([]digitaltraces.Visit, Stream, error)
	// TopKByExample is the full local top-k (the naive-gather A/B path).
	TopKByExample(visits []digitaltraces.Visit, k int) ([]digitaltraces.Match, digitaltraces.QueryStats, error)
	// BuildIndex rebuilds the shard's index; Refresh folds pending dirt,
	// escalating to a local rebuild itself when the dirt extends past the
	// indexed horizon (a remote shard cannot surface ErrBeyondHorizon
	// usefully across the wire, so escalation is the implementation's job;
	// the local adapter leaves it to Cluster.Refresh, which handles it).
	BuildIndex() error
	Refresh() error
	// Shape and serving state. On a remote shard the mutable values —
	// NumEntities, SnapshotGeneration, PendingEntities — answer from the
	// client's last-seen state (every protocol response carries the shard's
	// current state), so they cost no round trip on the query hot path; see
	// the single-coordinator caveat in shard/remote.
	NumEntities() int
	NumVenues() int
	Levels() int
	TimeUnit() time.Duration
	Epoch() (time.Time, bool)
	SnapshotGeneration() (uint64, bool)
	PendingEntities() int
	IndexStats() digitaltraces.IndexStats
	// SaveIndex / LoadIndex move the shard's MSIGTREE2 snapshot bytes, for
	// the cluster envelope (persist.go). A remote backend streams them over
	// the wire; the shard server folds/loads on its side. LoadIndexLenient
	// skips section entities absent from the shard's current log instead of
	// erroring — the slot-routed envelope load, where a saved section may
	// describe entities the slot map now routes elsewhere.
	SaveIndex(w io.Writer) (int64, error)
	LoadIndex(r io.Reader) error
	LoadIndexLenient(r io.Reader) error
	// Close releases the backend: a local shard stops its auto-refresh
	// goroutine, a remote client closes its pooled connections.
	Close() error
}

// Stream is one shard's half of an in-progress incremental top-k: results
// arrive in the shard's exact rank order (degree descending, ties by the
// shard's own ingest order), batched. A Stream pins one index snapshot for
// its whole life and is not safe for concurrent use; the coordinator drives
// each stream from a single goroutine per pull round.
type Stream interface {
	// Pull returns up to want further matches, an admissible upper bound on
	// the degree of everything not yet returned (0 once exhausted), and
	// whether more results may remain. Fewer than want matches with
	// more == true never happens: a short batch means the stream ran dry.
	Pull(want int) ([]digitaltraces.Match, float64, bool, error)
	// Checked reports the exact degree computations performed so far (for a
	// remote stream, as of the last pull — exact after the final pull, since
	// a cut stream does no further work).
	Checked() int
	// Generation identifies the pinned snapshot (the cluster cache's
	// version-vector component for this shard).
	Generation() uint64
	// Close releases the stream. A remote Close is fire-and-forget — the
	// shard server also expires idle streams — and a local Close is a no-op;
	// either way the Stream must not be used afterwards.
	Close() error
}

// local adapts an in-process *digitaltraces.DB to the Backend contract. All
// methods but the search-opening pair are the DB's own.
type local struct {
	*digitaltraces.DB
}

func (l local) OpenSearch(visits []digitaltraces.Visit) (Stream, error) {
	s, err := l.DB.SearchByExample(visits)
	if err != nil {
		return nil, err
	}
	return &localStream{s: s}, nil
}

func (l local) OpenSearchEntity(entity string) ([]digitaltraces.Visit, Stream, error) {
	visits, err := l.DB.VisitsOf(entity)
	if err != nil {
		return nil, nil, err
	}
	st, err := l.OpenSearch(visits)
	if err != nil {
		return nil, nil, err
	}
	return visits, st, nil
}

// localStream adapts digitaltraces.Search to the batched Stream contract by
// looping Next — in process, a "round trip" is a method call, so batching
// changes nothing but the shape.
type localStream struct {
	s *digitaltraces.Search
}

func (ls *localStream) Pull(want int) ([]digitaltraces.Match, float64, bool, error) {
	out := make([]digitaltraces.Match, 0, want)
	for len(out) < want {
		m, ok, err := ls.s.Next()
		if err != nil {
			return nil, 0, false, err
		}
		if !ok {
			return out, ls.s.Bound(), false, nil
		}
		out = append(out, m)
	}
	return out, ls.s.Bound(), true, nil
}

func (ls *localStream) Checked() int       { return ls.s.Checked() }
func (ls *localStream) Generation() uint64 { return ls.s.Generation() }
func (ls *localStream) Close() error       { return nil }

// closeStreams releases every non-nil stream (remote streams notify their
// shard server; local ones are no-ops).
func closeStreams(streams []Stream) {
	for _, s := range streams {
		if s != nil {
			s.Close()
		}
	}
}
