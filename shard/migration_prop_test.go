package shard

// Randomized exactness property for live slot migration: over the same
// adversarial visit logs as the scatter-gather suite, random slots are
// migrated to random shards while a query stream hammers the cluster — every
// answer must stay bit-identical to the single-DB reference before, during
// and after each move, for N ∈ {2, 4, 8} shards. A second phase migrates
// while a concurrent ingester streams fresh visits through the per-slot
// fence; after both settle, the pruned gather, the naive gather and a single
// DB fed the identical log must again agree bit-for-bit. Run under -race
// this is the acceptance check that the ingest fence, the atomic map publish
// and the per-pull ownership filter compose into "never a non-exact answer".

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"digitaltraces"
	"digitaltraces/shard/internal/proptest"
)

// migrationMoves pre-generates a deterministic (slot, target) move list —
// the rng must stay on the test goroutine, so randomness is drawn before any
// worker starts.
func migrationMoves(rng *rand.Rand, shards, count int) [][2]int {
	moves := make([][2]int, count)
	for i := range moves {
		moves[i] = [2]int{rng.Intn(NumSlots), rng.Intn(shards)}
	}
	return moves
}

func TestMigrationExactnessProperty(t *testing.T) {
	trials := []struct {
		seed         int64
		entities     int
		horizonHours int
	}{
		{seed: 41, entities: 24, horizonHours: 24},
		{seed: 42, entities: 60, horizonHours: 12}, // dense: short horizon, many collisions
	}
	for _, tr := range trials {
		tr := tr
		t.Run(fmt.Sprintf("seed=%d/entities=%d", tr.seed, tr.entities), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tr.seed))
			log := proptest.RandomLog(rng, tr.entities, tr.horizonHours)

			db := propDB(t)
			if _, err := db.AddVisits(log); err != nil {
				t.Fatal(err)
			}
			if err := db.BuildIndex(); err != nil {
				t.Fatal(err)
			}

			queries := proptest.SampleQueries(rng, tr.entities)
			ks := []int{1, 3, 10, tr.entities + 5}

			for _, n := range []int{2, 4, 8} {
				c := propCluster(t, db, n)
				if err := c.BuildIndex(); err != nil {
					t.Fatal(err)
				}

				// Phase 1 — frozen data, live queries racing live migration.
				// Migration moves state but never changes it, so the expected
				// answers are fixed and every concurrent answer must match
				// them bit-for-bit, whichever map the query pinned.
				type expectation struct {
					q  string
					k  int
					ms []digitaltraces.Match
				}
				var exp []expectation
				for _, q := range queries {
					for _, k := range ks {
						ms, _, err := db.TopK(q, k)
						if err != nil {
							t.Fatal(err)
						}
						exp = append(exp, expectation{q, k, ms})
					}
				}
				moves := migrationMoves(rng, n, 16)
				stop := make(chan struct{})
				errc := make(chan error, 1)
				report := func(err error) {
					select {
					case errc <- err:
					default:
					}
				}
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						e := exp[i%len(exp)]
						got, _, err := c.TopK(e.q, e.k)
						if err != nil {
							report(fmt.Errorf("TopK(%s,%d) mid-migration: %v", e.q, e.k, err))
							return
						}
						if len(got) != len(e.ms) {
							report(fmt.Errorf("TopK(%s,%d) mid-migration: %d matches, want %d", e.q, e.k, len(got), len(e.ms)))
							return
						}
						for j := range got {
							if got[j].Entity != e.ms[j].Entity || got[j].Degree != e.ms[j].Degree {
								report(fmt.Errorf("TopK(%s,%d) mid-migration: match %d = %+v, want %+v", e.q, e.k, j, got[j], e.ms[j]))
								return
							}
						}
					}
				}()
				for _, mv := range moves {
					if err := c.MigrateSlot(mv[0], mv[1]); err != nil {
						t.Fatalf("MigrateSlot(%d→%d): %v", mv[0], mv[1], err)
					}
				}
				// A planner pass through the same machinery, also under load.
				if _, err := c.Rebalance(4); err != nil {
					t.Fatalf("Rebalance: %v", err)
				}
				close(stop)
				wg.Wait()
				select {
				case err := <-errc:
					t.Fatalf("shards=%d: concurrent query diverged: %v", n, err)
				default:
				}
				comparePaths(t, fmt.Sprintf("post-migration/shards=%d", n), db, c, queries, ks)

				// Phase 2 — live ingest racing live migration. Batches are
				// pre-generated (the rng stays on this goroutine), streamed
				// into the cluster while slots move — the per-slot fence
				// decides, per visit, whether the old or new owner stores it —
				// then replayed into the reference DB; all three paths must
				// agree again.
				var batches [][]digitaltraces.VisitRecord
				for b := 0; b < 6; b++ {
					if d := proptest.Dirt(rng, tr.entities, tr.horizonHours); len(d) > 0 {
						batches = append(batches, d)
					}
				}
				moves = migrationMoves(rng, n, 12)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, b := range batches {
						if _, err := c.AddVisits(b); err != nil {
							report(fmt.Errorf("AddVisits mid-migration: %v", err))
							return
						}
					}
				}()
				for _, mv := range moves {
					if err := c.MigrateSlot(mv[0], mv[1]); err != nil {
						t.Fatalf("MigrateSlot(%d→%d): %v", mv[0], mv[1], err)
					}
				}
				wg.Wait()
				select {
				case err := <-errc:
					t.Fatalf("shards=%d: %v", n, err)
				default:
				}
				for _, b := range batches {
					if _, err := db.AddVisits(b); err != nil {
						t.Fatal(err)
					}
				}
				comparePaths(t, fmt.Sprintf("post-ingest-migration/shards=%d", n), db, c, queries, ks)
				// Fold the reference so the next cluster size replays one state.
				if err := db.Refresh(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
