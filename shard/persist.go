package shard

// Cluster persistence: a cluster snapshot is an envelope of independent
// per-shard DB snapshots (the MSIGTREE2 format of the root package),
// length-prefixed so each section is self-delimiting. Warm-restarting a
// cluster is therefore "re-ingest the log through the router, then
// LoadIndex": the shard count pins the routing function (ownership is FNV
// mod N), each section replays onto the shard the router owns its entities
// on, and every shard's own LoadIndex re-maps by entity name — so a section
// fed to the wrong shard fails on the first unresolvable name instead of
// answering for the wrong partition.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
)

// clusterMagic identifies the envelope; bump the trailing digit on layout
// changes. The payload format inside each section is versioned separately
// (by the root package's snapshot magic).
const clusterMagic = "MSIGCLUST1\n"

// maxShardSection caps a section length read from the envelope before
// allocation — corrupt headers must not look like a 2^60-byte index.
const maxShardSection = 1 << 34 // 16 GiB

// SaveIndex persists every shard's index to w as a length-prefixed envelope
// loadable by LoadIndex on a cluster of the same shard count. Shards are
// saved in parallel (each shard's SaveIndex folds its own pending dirt
// first); a shard with no entities writes an empty section. Implements the
// digitaltraces.Engine persistence surface.
func (c *Cluster) SaveIndex(w io.Writer) (int64, error) {
	bufs := make([]bytes.Buffer, len(c.shards))
	errs := make([]error, len(c.shards))
	runPool(len(c.shards), runtime.GOMAXPROCS(0), func(i int) {
		if c.shards[i].NumEntities() == 0 {
			return // empty shard: nothing indexed, empty section
		}
		_, errs[i] = c.shards[i].SaveIndex(&bufs[i])
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: saving shard %d index: %w", i, err)
		}
	}
	bw := bufio.NewWriter(w)
	n := int64(0)
	if _, err := bw.WriteString(clusterMagic); err != nil {
		return n, err
	}
	n += int64(len(clusterMagic))
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.shards))); err != nil {
		return n, err
	}
	n += 8
	for i := range bufs {
		if err := binary.Write(bw, binary.LittleEndian, uint64(bufs[i].Len())); err != nil {
			return n, err
		}
		n += 8
		nn, err := bw.Write(bufs[i].Bytes())
		n += int64(nn)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadIndex warm-restarts the cluster from a SaveIndex envelope: every
// section is loaded onto its shard in order, after the cluster's visit log
// has been re-ingested through the router. The envelope's shard count must
// equal this cluster's — entity ownership is a pure function of the shard
// count, so a different partitioning would route every section's entities
// to shards that do not hold their visits. Shards whose section is empty
// (no entities at save time) stay index-less and build lazily.
func (c *Cluster) LoadIndex(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(clusterMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot magic: %w", err)
	}
	if string(magic) != clusterMagic {
		return fmt.Errorf("shard: not a cluster index snapshot (magic %q; a single-DB snapshot loads via DB.LoadIndex)", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot shard count: %w", err)
	}
	if int(count) != len(c.shards) {
		return fmt.Errorf("shard: snapshot has %d shard sections, cluster has %d shards — entity routing is hash mod N, so the shard count must match the save", count, len(c.shards))
	}
	for i := range c.shards {
		var length uint64
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return fmt.Errorf("shard: snapshot truncated at shard %d section header: %w", i, err)
		}
		if length == 0 {
			continue
		}
		if length > maxShardSection {
			return fmt.Errorf("shard: snapshot shard %d section claims %d bytes — corrupt envelope", i, length)
		}
		section := make([]byte, length)
		if _, err := io.ReadFull(br, section); err != nil {
			return fmt.Errorf("shard: snapshot truncated inside shard %d section (want %d bytes): %w", i, length, err)
		}
		if err := c.shards[i].LoadIndex(bytes.NewReader(section)); err != nil {
			return fmt.Errorf("shard: loading shard %d index: %w", i, err)
		}
	}
	return nil
}
