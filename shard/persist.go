package shard

// Cluster persistence: a cluster snapshot is an envelope of independent
// per-shard DB snapshots (the MSIGTREE2 format of the root package),
// length-prefixed so each section is self-delimiting, preceded by the slot
// map that placed the entities. Warm-restarting a cluster is "re-ingest the
// log through the router, then LoadIndex": the current slot map routes the
// re-ingest, and the envelope's saved map tells the load which saved section
// best warms which current shard — sections are matched to shards by slot
// overlap and loaded leniently (entities a section names that the current
// map routes elsewhere are skipped, warming where they now live instead), so
// the shard count is free to change between save and load. Each shard's own
// LoadIndex re-maps by entity name and validates every resolved entity in
// full; a mismatched section can only cost warmth, never exactness.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"

	"digitaltraces/internal/mmap"
)

// clusterMagic identifies the envelope; bump the trailing digit on layout
// changes. The payload format inside each section is versioned separately
// (by the root package's snapshot magic). V2 prepends the slot map (epoch,
// 256×uint16 assignment, per-shard touched flags) to the V1 layout.
const clusterMagic = "MSIGCLUST2\n"

// clusterMagicV1 is the pre-slot-map envelope: no slot map, sections loaded
// strictly i→i, shard count pinned to the save.
const clusterMagicV1 = "MSIGCLUST1\n"

// maxShardSection caps a section length read from the envelope before
// allocation — corrupt headers must not look like a 2^60-byte index.
const maxShardSection = 1 << 34 // 16 GiB

// SaveIndex persists every shard's index to w as a length-prefixed envelope
// loadable by LoadIndex on a cluster of any shard count: the envelope opens
// with the slot map that placed the entities, so a load can match saved
// sections to current shards by slot overlap. Shards are saved in parallel
// (each shard's SaveIndex folds its own pending dirt first); a shard with no
// entities writes an empty section. Implements the digitaltraces.Engine
// persistence surface.
func (c *Cluster) SaveIndex(w io.Writer) (int64, error) {
	sm := c.slotmap()
	bufs := make([]bytes.Buffer, len(c.shards))
	errs := make([]error, len(c.shards))
	runPool(len(c.shards), runtime.GOMAXPROCS(0), func(i int) {
		if c.shards[i].NumEntities() == 0 {
			return // empty shard: nothing indexed, empty section
		}
		_, errs[i] = c.shards[i].SaveIndex(&bufs[i])
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: saving shard %d index: %w", i, err)
		}
	}
	bw := bufio.NewWriter(w)
	n := int64(0)
	emit := func(b []byte) error {
		nn, err := bw.Write(b)
		n += int64(nn)
		return err
	}
	hdr := make([]byte, 0, len(clusterMagic)+8+2*NumSlots+8+len(c.shards))
	hdr = append(hdr, clusterMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, sm.epoch)
	for _, sh := range sm.assign {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(sh))
	}
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(c.shards)))
	for _, t := range sm.touched {
		b := byte(0)
		if t {
			b = 1
		}
		hdr = append(hdr, b)
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	for i := range bufs {
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], uint64(bufs[i].Len()))
		if err := emit(l[:]); err != nil {
			return n, err
		}
		if err := emit(bufs[i].Bytes()); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadIndex warm-restarts the cluster from a SaveIndex envelope, after the
// cluster's visit log has been re-ingested through the router. The load
// never adopts the envelope's slot map — re-ingest already placed every
// entity under the *current* map — the saved map only says which entities
// each saved section describes, so every current shard loads the saved
// section sharing the most slots with it (ties to the lowest section),
// leniently: section entities the current map routes elsewhere are skipped
// and warm where they now live. A 4-shard envelope therefore loads into an
// 8-shard cluster (and vice versa); only entities whose section landed
// elsewhere pay a rebuild on their first refresh. Shards empty under the
// current routing stay index-less and build lazily.
//
// Legacy MSIGCLUST1 envelopes carry no slot map: their sections load i→i,
// so the shard count must match the save's.
func (c *Cluster) LoadIndex(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(clusterMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot magic: %w", err)
	}
	switch string(magic) {
	case clusterMagic:
	case clusterMagicV1:
		return c.loadIndexV1(br)
	default:
		return fmt.Errorf("shard: not a cluster index snapshot (magic %q; a single-DB snapshot loads via DB.LoadIndex)", magic)
	}
	var epoch uint64
	if err := binary.Read(br, binary.LittleEndian, &epoch); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot slot-map epoch: %w", err)
	}
	assignB := make([]byte, 2*NumSlots)
	if _, err := io.ReadFull(br, assignB); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot slot assignment: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot shard count: %w", err)
	}
	if count == 0 || count > math.MaxUint16 {
		return fmt.Errorf("shard: snapshot claims %d shard sections — corrupt envelope", count)
	}
	var saved [NumSlots]int
	for s := range saved {
		saved[s] = int(binary.LittleEndian.Uint16(assignB[2*s:]))
		if saved[s] >= int(count) {
			return fmt.Errorf("shard: snapshot slot %d assigned to shard %d of %d — corrupt envelope", s, saved[s], count)
		}
	}
	// Touched flags describe the save-time cluster's ingest-order alignment;
	// a heap load re-ingested the log fresh, so this cluster's own flags are
	// authoritative and the saved ones are skipped.
	if _, err := io.ReadFull(br, make([]byte, count)); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot touched flags: %w", err)
	}

	// Match each current shard to the saved section it shares the most slots
	// with: that section names the largest set of entities the current map
	// still routes here, so loading it leniently warms the most entities.
	cur := c.slotmap()
	overlap := make([][]int, len(c.shards))
	for o := range overlap {
		overlap[o] = make([]int, count)
	}
	for s := 0; s < NumSlots; s++ {
		overlap[cur.assign[s]][saved[s]]++
	}
	best := make([]int, len(c.shards))
	for o := range best {
		best[o] = -1
		m := 0
		for i, ov := range overlap[o] {
			if ov > m {
				m, best[o] = ov, i
			}
		}
		if c.shards[o].NumEntities() == 0 {
			best[o] = -1 // nothing re-ingested here: LoadIndex has no log to resolve against
		}
	}
	for i := 0; i < int(count); i++ {
		var length uint64
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return fmt.Errorf("shard: snapshot truncated at section %d header: %w", i, err)
		}
		if length == 0 {
			continue
		}
		if length > maxShardSection {
			return fmt.Errorf("shard: snapshot section %d claims %d bytes — corrupt envelope", i, length)
		}
		var wanters []int
		for o := range best {
			if best[o] == i {
				wanters = append(wanters, o)
			}
		}
		if len(wanters) == 0 {
			if _, err := io.CopyN(io.Discard, br, int64(length)); err != nil {
				return fmt.Errorf("shard: snapshot truncated inside section %d (want %d bytes): %w", i, length, err)
			}
			continue
		}
		section := make([]byte, length)
		if _, err := io.ReadFull(br, section); err != nil {
			return fmt.Errorf("shard: snapshot truncated inside section %d (want %d bytes): %w", i, length, err)
		}
		for _, o := range wanters {
			if err := c.shards[o].LoadIndexLenient(bytes.NewReader(section)); err != nil {
				return fmt.Errorf("shard: loading section %d onto shard %d: %w", i, o, err)
			}
		}
	}
	return nil
}

// loadIndexV1 loads a pre-slot-map envelope: sections were saved under the
// implicit default map of their shard count and carry no assignment, so they
// can only be matched i→i — the shard count must equal the save's. The load
// is still lenient (the current cluster's map may have migrated slots since
// the re-ingest), so a matched count always loads; re-save to get a
// MSIGCLUST2 envelope that survives topology changes.
func (c *Cluster) loadIndexV1(br *bufio.Reader) error {
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot shard count: %w", err)
	}
	if int(count) != len(c.shards) {
		return fmt.Errorf("shard: legacy (MSIGCLUST1) snapshot has %d shard sections, cluster has %d shards — pre-slot-map envelopes pin their shard count; load into a %d-shard cluster and re-save to get a slot-mapped envelope that loads at any count", count, len(c.shards), count)
	}
	for i := range c.shards {
		var length uint64
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return fmt.Errorf("shard: snapshot truncated at shard %d section header: %w", i, err)
		}
		if length == 0 {
			continue
		}
		if length > maxShardSection {
			return fmt.Errorf("shard: snapshot shard %d section claims %d bytes — corrupt envelope", i, length)
		}
		section := make([]byte, length)
		if _, err := io.ReadFull(br, section); err != nil {
			return fmt.Errorf("shard: snapshot truncated inside shard %d section (want %d bytes): %w", i, length, err)
		}
		if c.shards[i].NumEntities() == 0 {
			continue // nothing re-ingested here under the current map
		}
		if err := c.shards[i].LoadIndexLenient(bytes.NewReader(section)); err != nil {
			return fmt.Errorf("shard: loading shard %d index: %w", i, err)
		}
	}
	return nil
}

// clusterMappedMagic identifies the memory-mappable cluster envelope: a
// page-aligned header (carrying the slot map: epoch, 256×uint16 assignment,
// per-shard touched flags), the global entity-ordinal table, then one
// page-aligned MSIGMAP1 image per shard (zero-length for shards that held no
// entities). Unlike the heap envelope, this one also persists the
// cluster-wide first-arrival ordinals — the heap path re-derives them from
// re-ingest, which a mapped boot skips — so cross-shard degree ties break
// exactly as they did at save. For the same reason the shard count cannot
// change across a mapped load: sections are physical images served in place,
// not name-resolved replays (change topology through a heap envelope).
const clusterMappedMagic = "MSIGCMAP2\n"

// clusterMappedMagicV1 is the pre-slot-map mapped envelope: no slot map in
// the header; loadable only while the cluster's map is still the default
// assignment its implicit hash-mod-N placement assumed.
const clusterMappedMagicV1 = "MSIGCMAP1\n"

// mappedBackend is the optional mapped-persistence surface of a Backend. The
// local adapter satisfies it through its embedded *digitaltraces.DB; remote
// shards do not — a memory mapping cannot cross a process boundary, so a
// distributed cluster persists per shard server (each host saves and maps its
// own MSIGMAP1 image) and the coordinator's mapped envelope is refused with a
// descriptive error instead.
type mappedBackend interface {
	SaveMappedIndex(w io.Writer) (int64, error)
	LoadMappedIndexAt(r io.ReaderAt, size int64) error
}

// mappedShard asserts shard i supports mapped persistence.
func (c *Cluster) mappedShard(i int) (mappedBackend, error) {
	mb, ok := c.shards[i].(mappedBackend)
	if !ok {
		return nil, fmt.Errorf("shard: shard %d is remote — mapped cluster envelopes need in-process shards (persist each shard server's index on its own host instead)", i)
	}
	return mb, nil
}

// clusterMapPage is the envelope's alignment unit; the per-shard MSIGMAP1
// images use their own (equal) default page size.
const clusterMapPage = 4096

// SaveMappedIndex persists every shard's index, with sequence data, as a
// memory-mappable envelope loadable by Cluster.LoadMappedIndex on a cluster
// of the same shard count. Shards serialize in parallel (each folding its own
// pending dirt first); an empty shard contributes a zero-length section.
// Implements the digitaltraces.MappedPersister surface.
func (c *Cluster) SaveMappedIndex(w io.Writer) (int64, error) {
	bufs := make([]bytes.Buffer, len(c.shards))
	errs := make([]error, len(c.shards))
	runPool(len(c.shards), runtime.GOMAXPROCS(0), func(i int) {
		if c.shards[i].NumEntities() == 0 {
			return
		}
		mb, err := c.mappedShard(i)
		if err != nil {
			errs[i] = err
			return
		}
		_, errs[i] = mb.SaveMappedIndex(&bufs[i])
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: saving shard %d mapped index: %w", i, err)
		}
	}
	// The global ordinal table, in first-arrival order.
	c.mu.RLock()
	names := make([]string, len(c.ord))
	for name, o := range c.ord {
		names[o] = name
	}
	c.mu.RUnlock()
	var ord bytes.Buffer
	for _, name := range names {
		if len(name) > math.MaxUint16 {
			return 0, fmt.Errorf("shard: entity name is %d bytes, the mapped envelope caps names at %d", len(name), math.MaxUint16)
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(name)))
		ord.Write(l[:])
		ord.WriteString(name)
	}

	alignUp := func(n int64) int64 {
		return (n + clusterMapPage - 1) &^ (clusterMapPage - 1)
	}
	sm := c.slotmap()
	headerLen := int64(len(clusterMappedMagic)) + 4 + 8 + 8 + 8 + 16 + 8 + 2*NumSlots + int64(len(c.shards)) + 16*int64(len(c.shards))
	headerRegion := alignUp(headerLen)
	ordOff := headerRegion
	ordRegion := alignUp(int64(ord.Len()))
	offs := make([]int64, len(c.shards))
	off := ordOff + ordRegion
	for i := range bufs {
		offs[i] = off
		off += alignUp(int64(bufs[i].Len())) // MSIGMAP1 images are already page-padded
	}
	total := off

	bw := bufio.NewWriter(w)
	n := int64(0)
	emit := func(b []byte) error {
		nn, err := bw.Write(b)
		n += int64(nn)
		return err
	}
	pad := func(to int64) error {
		for n < to {
			chunk := min(int64(clusterMapPage), to-n)
			if err := emit(make([]byte, chunk)); err != nil {
				return err
			}
		}
		return nil
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, clusterMappedMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, clusterMapPage)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(total))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(c.shards)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(names)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ordOff))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ord.Len()))
	hdr = binary.LittleEndian.AppendUint64(hdr, sm.epoch)
	for _, sh := range sm.assign {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(sh))
	}
	for _, t := range sm.touched {
		b := byte(0)
		if t {
			b = 1
		}
		hdr = append(hdr, b)
	}
	for i := range bufs {
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(offs[i]))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(bufs[i].Len()))
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	if err := pad(ordOff); err != nil {
		return n, err
	}
	if err := emit(ord.Bytes()); err != nil {
		return n, err
	}
	for i := range bufs {
		if err := pad(offs[i]); err != nil {
			return n, err
		}
		if err := emit(bufs[i].Bytes()); err != nil {
			return n, err
		}
	}
	if err := pad(total); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// LoadMappedIndex maps a SaveMappedIndex envelope read-only and publishes
// every shard's section straight off the mapping (DB.LoadMappedIndexAt), so
// a cluster restart is query-ready after the per-shard signature replays —
// no visit re-ingest — and sequence pages fault in lazily per shard. The
// envelope's shard count must equal this cluster's (routing is hash mod N),
// and the stored global ordinals must agree with any entities already
// registered here, so degree ties break exactly as they did at save. After a
// mapped load every shard is in union-fold mode: new visits keep folding in
// exactly, SaveIndex is refused cluster-wide, and persistence goes through
// SaveMappedIndex. Close unmaps the envelope — stop queries first.
//
// On a mid-load failure shards already loaded keep serving their mapped
// sections (the mapping stays open until Close); the error names the shard
// that failed.
func (c *Cluster) LoadMappedIndex(path string) error {
	m, err := mmap.Open(path)
	if err != nil {
		return fmt.Errorf("shard: mapping cluster index %s: %w", path, err)
	}
	fixedLen := int64(len(clusterMappedMagic)) + 4 + 8 + 8 + 8 + 16
	hdr := make([]byte, fixedLen)
	if m.Size() < fixedLen {
		m.Close()
		return fmt.Errorf("shard: %d bytes is too short for a mapped cluster envelope header (%d)", m.Size(), fixedLen)
	}
	if _, err := m.ReadAt(hdr, 0); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster header: %w", err)
	}
	var version int
	switch string(hdr[:len(clusterMappedMagic)]) {
	case clusterMappedMagic:
		version = 2
	case clusterMappedMagicV1:
		version = 1
	default:
		m.Close()
		return fmt.Errorf("shard: not a mapped cluster envelope (magic %q; a single-DB mapped index loads via DB.LoadMappedIndex)", hdr[:len(clusterMappedMagic)])
	}
	p := int64(len(clusterMappedMagic))
	pageSize := int64(binary.LittleEndian.Uint32(hdr[p:]))
	claimed := int64(binary.LittleEndian.Uint64(hdr[p+4:]))
	count := binary.LittleEndian.Uint64(hdr[p+12:])
	ordCount := binary.LittleEndian.Uint64(hdr[p+20:])
	ordOff := int64(binary.LittleEndian.Uint64(hdr[p+28:]))
	ordLen := int64(binary.LittleEndian.Uint64(hdr[p+36:]))
	if pageSize != clusterMapPage {
		m.Close()
		return fmt.Errorf("shard: corrupt mapped cluster envelope: page size %d, want %d", pageSize, clusterMapPage)
	}
	if claimed != m.Size() {
		m.Close()
		return fmt.Errorf("shard: mapped cluster envelope is %d bytes but its header claims %d (truncated or corrupt file)", m.Size(), claimed)
	}
	if int(count) != len(c.shards) {
		m.Close()
		return fmt.Errorf("shard: mapped envelope has %d shard sections, cluster has %d shards — a mapped image serves sections in place, so its shard count is pinned; to change topology, save a heap (SaveIndex) envelope and re-ingest the log at the new count", count, len(c.shards))
	}
	// The slot-map gate: a mapped image is served physically, so the serving
	// map must match the placement the image froze.
	secBase := fixedLen
	if version == 2 {
		extra := make([]byte, 8+2*NumSlots+int64(count))
		if m.Size() < fixedLen+int64(len(extra)) {
			m.Close()
			return fmt.Errorf("shard: mapped cluster envelope truncated inside its slot map")
		}
		if _, err := m.ReadAt(extra, fixedLen); err != nil {
			m.Close()
			return fmt.Errorf("shard: reading mapped cluster slot map: %w", err)
		}
		if err := c.reconcileMappedSlotMap(extra, int(count)); err != nil {
			m.Close()
			return err
		}
		secBase = fixedLen + int64(len(extra))
	} else if !c.slotmap().isDefault() {
		m.Close()
		return fmt.Errorf("shard: legacy (MSIGCMAP1) mapped envelope carries no slot map, but this cluster's slot assignment is not the default hash-mod-%d placement the save assumed — re-save with the current format", count)
	}
	if m.Size() < secBase+16*int64(count) {
		m.Close()
		return fmt.Errorf("shard: mapped cluster envelope truncated inside its section table")
	}
	secs := make([]byte, 16*count)
	if _, err := m.ReadAt(secs, secBase); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster section table: %w", err)
	}
	if ordOff < 0 || ordLen < 0 || ordOff+ordLen > m.Size() || ordOff%pageSize != 0 {
		m.Close()
		return fmt.Errorf("shard: corrupt mapped cluster envelope: ordinal region [%d,%d) outside or misaligned in a %d-byte file", ordOff, ordOff+ordLen, m.Size())
	}

	// Decode and reconcile the global ordinal table before touching any
	// shard: an empty registry adopts it; a populated one (a re-ingested
	// log) must agree on every stored ordinal, or cross-shard tie-breaking
	// would silently differ from the save. Entities registered beyond the
	// stored ones (a log grown since the save) are fine — they sort after.
	ordBytes := make([]byte, ordLen)
	if _, err := m.ReadAt(ordBytes, ordOff); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster ordinal table: %w", err)
	}
	names := make([]string, 0, ordCount)
	for q := 0; uint64(len(names)) < ordCount; {
		if q+2 > len(ordBytes) {
			m.Close()
			return fmt.Errorf("shard: mapped cluster ordinal table truncated at entry %d of %d", len(names), ordCount)
		}
		l := int(binary.LittleEndian.Uint16(ordBytes[q:]))
		q += 2
		if q+l > len(ordBytes) {
			m.Close()
			return fmt.Errorf("shard: mapped cluster ordinal table truncated inside entry %d of %d", len(names), ordCount)
		}
		names = append(names, string(ordBytes[q:q+l]))
		q += l
	}
	c.mu.Lock()
	if len(c.ord) > 0 {
		for i, name := range names {
			if o, ok := c.ord[name]; !ok || o != i {
				c.mu.Unlock()
				m.Close()
				return fmt.Errorf("shard: entity %q has global ordinal %d in the envelope but %d here — mapped envelopes resolve tie-break order by save-time arrival, so re-ingest the visit log in its original order (or load into a fresh cluster)", name, i, orValue(o, ok))
			}
		}
	}
	c.mu.Unlock()

	// The mapping must outlive every shard snapshot published below, even if
	// a later shard fails — track it for Close before the first load.
	c.mu.Lock()
	c.mappings = append(c.mappings, m)
	c.mu.Unlock()
	for i := range c.shards {
		off := int64(binary.LittleEndian.Uint64(secs[16*i:]))
		length := int64(binary.LittleEndian.Uint64(secs[16*i+8:]))
		if length == 0 {
			continue // empty shard at save time: stays index-less, builds lazily
		}
		if off < 0 || length < 0 || off+length > m.Size() || off%pageSize != 0 {
			return fmt.Errorf("shard: corrupt mapped cluster envelope: shard %d section [%d,%d) outside or misaligned in a %d-byte file", i, off, off+length, m.Size())
		}
		mb, err := c.mappedShard(i)
		if err != nil {
			return err
		}
		if err := mb.LoadMappedIndexAt(io.NewSectionReader(m, off, length), length); err != nil {
			return fmt.Errorf("shard: loading shard %d mapped index: %w", i, err)
		}
	}
	c.mu.Lock()
	if len(c.ord) == 0 {
		for i, name := range names {
			c.ord[name] = i
		}
	}
	c.mu.Unlock()
	return nil
}

// reconcileMappedSlotMap applies a v2 mapped envelope's slot map (epoch,
// 256×uint16 assignment, per-shard touched flags, concatenated in extra)
// against the cluster's. A populated registry (a re-ingested log) must
// already be routed exactly as the image was saved — the image is served
// physically, so a divergent map would filter answers under ownership the
// sections do not reflect. An empty cluster adopts the saved map wholesale.
// Either way the saved touched flags are honored: they mark shards whose
// image's local ingest order is misaligned with the global order, a property
// the mapped load preserves byte-for-byte.
func (c *Cluster) reconcileMappedSlotMap(extra []byte, count int) error {
	savedEpoch := binary.LittleEndian.Uint64(extra)
	var saved [NumSlots]int
	for s := range saved {
		saved[s] = int(binary.LittleEndian.Uint16(extra[8+2*s:]))
		if saved[s] >= count {
			return fmt.Errorf("shard: corrupt mapped cluster envelope: slot %d assigned to shard %d of %d", s, saved[s], count)
		}
	}
	touched := make([]bool, count)
	for i := range touched {
		touched[i] = extra[8+2*NumSlots+i] != 0
	}
	c.mu.RLock()
	populated := len(c.ord) > 0
	c.mu.RUnlock()
	cur := c.slotmap()
	if !populated {
		// Fresh boot straight off the image: the saved placement becomes the
		// serving placement. The epoch stays monotone past any AssignSlots
		// publishes that preceded this load.
		next := &SlotMap{epoch: max(savedEpoch, cur.epoch+1), touched: touched}
		copy(next.assign[:], saved[:])
		c.publishSlotMap(next)
		return nil
	}
	for s := range saved {
		if cur.assign[s] != saved[s] {
			return fmt.Errorf("shard: mapped envelope assigns slot %d to shard %d but this cluster routes it to shard %d — the log was re-ingested under a different slot map than the image froze; restore the saved map (AssignSlots before ingest) or load into a fresh cluster", s, saved[s], cur.assign[s])
		}
	}
	merge := false
	for i, t := range touched {
		if t && !cur.touched[i] {
			merge = true
		}
	}
	if merge {
		next := cur.clone()
		next.epoch++
		for i, t := range touched {
			if t {
				next.touched[i] = true
			}
		}
		c.publishSlotMap(next)
	}
	return nil
}

// orValue renders a registry lookup for the ordinal-mismatch error: the
// found ordinal, or -1 when the name is not registered at all.
func orValue(o int, ok bool) int {
	if !ok {
		return -1
	}
	return o
}
