package shard

// Cluster persistence: a cluster snapshot is an envelope of independent
// per-shard DB snapshots (the MSIGTREE2 format of the root package),
// length-prefixed so each section is self-delimiting. Warm-restarting a
// cluster is therefore "re-ingest the log through the router, then
// LoadIndex": the shard count pins the routing function (ownership is FNV
// mod N), each section replays onto the shard the router owns its entities
// on, and every shard's own LoadIndex re-maps by entity name — so a section
// fed to the wrong shard fails on the first unresolvable name instead of
// answering for the wrong partition.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"

	"digitaltraces/internal/mmap"
)

// clusterMagic identifies the envelope; bump the trailing digit on layout
// changes. The payload format inside each section is versioned separately
// (by the root package's snapshot magic).
const clusterMagic = "MSIGCLUST1\n"

// maxShardSection caps a section length read from the envelope before
// allocation — corrupt headers must not look like a 2^60-byte index.
const maxShardSection = 1 << 34 // 16 GiB

// SaveIndex persists every shard's index to w as a length-prefixed envelope
// loadable by LoadIndex on a cluster of the same shard count. Shards are
// saved in parallel (each shard's SaveIndex folds its own pending dirt
// first); a shard with no entities writes an empty section. Implements the
// digitaltraces.Engine persistence surface.
func (c *Cluster) SaveIndex(w io.Writer) (int64, error) {
	bufs := make([]bytes.Buffer, len(c.shards))
	errs := make([]error, len(c.shards))
	runPool(len(c.shards), runtime.GOMAXPROCS(0), func(i int) {
		if c.shards[i].NumEntities() == 0 {
			return // empty shard: nothing indexed, empty section
		}
		_, errs[i] = c.shards[i].SaveIndex(&bufs[i])
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: saving shard %d index: %w", i, err)
		}
	}
	bw := bufio.NewWriter(w)
	n := int64(0)
	if _, err := bw.WriteString(clusterMagic); err != nil {
		return n, err
	}
	n += int64(len(clusterMagic))
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.shards))); err != nil {
		return n, err
	}
	n += 8
	for i := range bufs {
		if err := binary.Write(bw, binary.LittleEndian, uint64(bufs[i].Len())); err != nil {
			return n, err
		}
		n += 8
		nn, err := bw.Write(bufs[i].Bytes())
		n += int64(nn)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadIndex warm-restarts the cluster from a SaveIndex envelope: every
// section is loaded onto its shard in order, after the cluster's visit log
// has been re-ingested through the router. The envelope's shard count must
// equal this cluster's — entity ownership is a pure function of the shard
// count, so a different partitioning would route every section's entities
// to shards that do not hold their visits. Shards whose section is empty
// (no entities at save time) stay index-less and build lazily.
func (c *Cluster) LoadIndex(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(clusterMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot magic: %w", err)
	}
	if string(magic) != clusterMagic {
		return fmt.Errorf("shard: not a cluster index snapshot (magic %q; a single-DB snapshot loads via DB.LoadIndex)", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("shard: reading cluster snapshot shard count: %w", err)
	}
	if int(count) != len(c.shards) {
		return fmt.Errorf("shard: snapshot has %d shard sections, cluster has %d shards — entity routing is hash mod N, so the shard count must match the save", count, len(c.shards))
	}
	for i := range c.shards {
		var length uint64
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return fmt.Errorf("shard: snapshot truncated at shard %d section header: %w", i, err)
		}
		if length == 0 {
			continue
		}
		if length > maxShardSection {
			return fmt.Errorf("shard: snapshot shard %d section claims %d bytes — corrupt envelope", i, length)
		}
		section := make([]byte, length)
		if _, err := io.ReadFull(br, section); err != nil {
			return fmt.Errorf("shard: snapshot truncated inside shard %d section (want %d bytes): %w", i, length, err)
		}
		if err := c.shards[i].LoadIndex(bytes.NewReader(section)); err != nil {
			return fmt.Errorf("shard: loading shard %d index: %w", i, err)
		}
	}
	return nil
}

// clusterMappedMagic identifies the memory-mappable cluster envelope: a
// page-aligned header, the global entity-ordinal table, then one page-aligned
// MSIGMAP1 image per shard (zero-length for shards that held no entities).
// Unlike MSIGCLUST1, the envelope also persists the cluster-wide first-arrival
// ordinals — the heap path re-derives them from re-ingest, which a mapped
// boot skips — so cross-shard degree ties break exactly as they did at save.
const clusterMappedMagic = "MSIGCMAP1\n"

// mappedBackend is the optional mapped-persistence surface of a Backend. The
// local adapter satisfies it through its embedded *digitaltraces.DB; remote
// shards do not — a memory mapping cannot cross a process boundary, so a
// distributed cluster persists per shard server (each host saves and maps its
// own MSIGMAP1 image) and the coordinator's mapped envelope is refused with a
// descriptive error instead.
type mappedBackend interface {
	SaveMappedIndex(w io.Writer) (int64, error)
	LoadMappedIndexAt(r io.ReaderAt, size int64) error
}

// mappedShard asserts shard i supports mapped persistence.
func (c *Cluster) mappedShard(i int) (mappedBackend, error) {
	mb, ok := c.shards[i].(mappedBackend)
	if !ok {
		return nil, fmt.Errorf("shard: shard %d is remote — mapped cluster envelopes need in-process shards (persist each shard server's index on its own host instead)", i)
	}
	return mb, nil
}

// clusterMapPage is the envelope's alignment unit; the per-shard MSIGMAP1
// images use their own (equal) default page size.
const clusterMapPage = 4096

// SaveMappedIndex persists every shard's index, with sequence data, as a
// memory-mappable envelope loadable by Cluster.LoadMappedIndex on a cluster
// of the same shard count. Shards serialize in parallel (each folding its own
// pending dirt first); an empty shard contributes a zero-length section.
// Implements the digitaltraces.MappedPersister surface.
func (c *Cluster) SaveMappedIndex(w io.Writer) (int64, error) {
	bufs := make([]bytes.Buffer, len(c.shards))
	errs := make([]error, len(c.shards))
	runPool(len(c.shards), runtime.GOMAXPROCS(0), func(i int) {
		if c.shards[i].NumEntities() == 0 {
			return
		}
		mb, err := c.mappedShard(i)
		if err != nil {
			errs[i] = err
			return
		}
		_, errs[i] = mb.SaveMappedIndex(&bufs[i])
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: saving shard %d mapped index: %w", i, err)
		}
	}
	// The global ordinal table, in first-arrival order.
	c.mu.RLock()
	names := make([]string, len(c.ord))
	for name, o := range c.ord {
		names[o] = name
	}
	c.mu.RUnlock()
	var ord bytes.Buffer
	for _, name := range names {
		if len(name) > math.MaxUint16 {
			return 0, fmt.Errorf("shard: entity name is %d bytes, the mapped envelope caps names at %d", len(name), math.MaxUint16)
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(name)))
		ord.Write(l[:])
		ord.WriteString(name)
	}

	alignUp := func(n int64) int64 {
		return (n + clusterMapPage - 1) &^ (clusterMapPage - 1)
	}
	headerLen := int64(len(clusterMappedMagic)) + 4 + 8 + 8 + 8 + 16 + 16*int64(len(c.shards))
	headerRegion := alignUp(headerLen)
	ordOff := headerRegion
	ordRegion := alignUp(int64(ord.Len()))
	offs := make([]int64, len(c.shards))
	off := ordOff + ordRegion
	for i := range bufs {
		offs[i] = off
		off += alignUp(int64(bufs[i].Len())) // MSIGMAP1 images are already page-padded
	}
	total := off

	bw := bufio.NewWriter(w)
	n := int64(0)
	emit := func(b []byte) error {
		nn, err := bw.Write(b)
		n += int64(nn)
		return err
	}
	pad := func(to int64) error {
		for n < to {
			chunk := min(int64(clusterMapPage), to-n)
			if err := emit(make([]byte, chunk)); err != nil {
				return err
			}
		}
		return nil
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, clusterMappedMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, clusterMapPage)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(total))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(c.shards)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(names)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ordOff))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(ord.Len()))
	for i := range bufs {
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(offs[i]))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(bufs[i].Len()))
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	if err := pad(ordOff); err != nil {
		return n, err
	}
	if err := emit(ord.Bytes()); err != nil {
		return n, err
	}
	for i := range bufs {
		if err := pad(offs[i]); err != nil {
			return n, err
		}
		if err := emit(bufs[i].Bytes()); err != nil {
			return n, err
		}
	}
	if err := pad(total); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// LoadMappedIndex maps a SaveMappedIndex envelope read-only and publishes
// every shard's section straight off the mapping (DB.LoadMappedIndexAt), so
// a cluster restart is query-ready after the per-shard signature replays —
// no visit re-ingest — and sequence pages fault in lazily per shard. The
// envelope's shard count must equal this cluster's (routing is hash mod N),
// and the stored global ordinals must agree with any entities already
// registered here, so degree ties break exactly as they did at save. After a
// mapped load every shard is in union-fold mode: new visits keep folding in
// exactly, SaveIndex is refused cluster-wide, and persistence goes through
// SaveMappedIndex. Close unmaps the envelope — stop queries first.
//
// On a mid-load failure shards already loaded keep serving their mapped
// sections (the mapping stays open until Close); the error names the shard
// that failed.
func (c *Cluster) LoadMappedIndex(path string) error {
	m, err := mmap.Open(path)
	if err != nil {
		return fmt.Errorf("shard: mapping cluster index %s: %w", path, err)
	}
	fixedLen := int64(len(clusterMappedMagic)) + 4 + 8 + 8 + 8 + 16
	hdr := make([]byte, fixedLen)
	if m.Size() < fixedLen {
		m.Close()
		return fmt.Errorf("shard: %d bytes is too short for a mapped cluster envelope header (%d)", m.Size(), fixedLen)
	}
	if _, err := m.ReadAt(hdr, 0); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster header: %w", err)
	}
	if string(hdr[:len(clusterMappedMagic)]) != clusterMappedMagic {
		m.Close()
		return fmt.Errorf("shard: not a mapped cluster envelope (magic %q; a single-DB mapped index loads via DB.LoadMappedIndex)", hdr[:len(clusterMappedMagic)])
	}
	p := int64(len(clusterMappedMagic))
	pageSize := int64(binary.LittleEndian.Uint32(hdr[p:]))
	claimed := int64(binary.LittleEndian.Uint64(hdr[p+4:]))
	count := binary.LittleEndian.Uint64(hdr[p+12:])
	ordCount := binary.LittleEndian.Uint64(hdr[p+20:])
	ordOff := int64(binary.LittleEndian.Uint64(hdr[p+28:]))
	ordLen := int64(binary.LittleEndian.Uint64(hdr[p+36:]))
	if pageSize != clusterMapPage {
		m.Close()
		return fmt.Errorf("shard: corrupt mapped cluster envelope: page size %d, want %d", pageSize, clusterMapPage)
	}
	if claimed != m.Size() {
		m.Close()
		return fmt.Errorf("shard: mapped cluster envelope is %d bytes but its header claims %d (truncated or corrupt file)", m.Size(), claimed)
	}
	if int(count) != len(c.shards) {
		m.Close()
		return fmt.Errorf("shard: mapped envelope has %d shard sections, cluster has %d shards — entity routing is hash mod N, so the shard count must match the save", count, len(c.shards))
	}
	secBase := fixedLen
	if m.Size() < secBase+16*int64(count) {
		m.Close()
		return fmt.Errorf("shard: mapped cluster envelope truncated inside its section table")
	}
	secs := make([]byte, 16*count)
	if _, err := m.ReadAt(secs, secBase); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster section table: %w", err)
	}
	if ordOff < 0 || ordLen < 0 || ordOff+ordLen > m.Size() || ordOff%pageSize != 0 {
		m.Close()
		return fmt.Errorf("shard: corrupt mapped cluster envelope: ordinal region [%d,%d) outside or misaligned in a %d-byte file", ordOff, ordOff+ordLen, m.Size())
	}

	// Decode and reconcile the global ordinal table before touching any
	// shard: an empty registry adopts it; a populated one (a re-ingested
	// log) must agree on every stored ordinal, or cross-shard tie-breaking
	// would silently differ from the save. Entities registered beyond the
	// stored ones (a log grown since the save) are fine — they sort after.
	ordBytes := make([]byte, ordLen)
	if _, err := m.ReadAt(ordBytes, ordOff); err != nil {
		m.Close()
		return fmt.Errorf("shard: reading mapped cluster ordinal table: %w", err)
	}
	names := make([]string, 0, ordCount)
	for q := 0; uint64(len(names)) < ordCount; {
		if q+2 > len(ordBytes) {
			m.Close()
			return fmt.Errorf("shard: mapped cluster ordinal table truncated at entry %d of %d", len(names), ordCount)
		}
		l := int(binary.LittleEndian.Uint16(ordBytes[q:]))
		q += 2
		if q+l > len(ordBytes) {
			m.Close()
			return fmt.Errorf("shard: mapped cluster ordinal table truncated inside entry %d of %d", len(names), ordCount)
		}
		names = append(names, string(ordBytes[q:q+l]))
		q += l
	}
	c.mu.Lock()
	if len(c.ord) > 0 {
		for i, name := range names {
			if o, ok := c.ord[name]; !ok || o != i {
				c.mu.Unlock()
				m.Close()
				return fmt.Errorf("shard: entity %q has global ordinal %d in the envelope but %d here — mapped envelopes resolve tie-break order by save-time arrival, so re-ingest the visit log in its original order (or load into a fresh cluster)", name, i, orValue(o, ok))
			}
		}
	}
	c.mu.Unlock()

	// The mapping must outlive every shard snapshot published below, even if
	// a later shard fails — track it for Close before the first load.
	c.mu.Lock()
	c.mappings = append(c.mappings, m)
	c.mu.Unlock()
	for i := range c.shards {
		off := int64(binary.LittleEndian.Uint64(secs[16*i:]))
		length := int64(binary.LittleEndian.Uint64(secs[16*i+8:]))
		if length == 0 {
			continue // empty shard at save time: stays index-less, builds lazily
		}
		if off < 0 || length < 0 || off+length > m.Size() || off%pageSize != 0 {
			return fmt.Errorf("shard: corrupt mapped cluster envelope: shard %d section [%d,%d) outside or misaligned in a %d-byte file", i, off, off+length, m.Size())
		}
		mb, err := c.mappedShard(i)
		if err != nil {
			return err
		}
		if err := mb.LoadMappedIndexAt(io.NewSectionReader(m, off, length), length); err != nil {
			return fmt.Errorf("shard: loading shard %d mapped index: %w", i, err)
		}
	}
	c.mu.Lock()
	if len(c.ord) == 0 {
		for i, name := range names {
			c.ord[name] = i
		}
	}
	c.mu.Unlock()
	return nil
}

// orValue renders a registry lookup for the ordinal-mismatch error: the
// found ordinal, or -1 when the name is not registered at all.
func orValue(o int, ok bool) int {
	if !ok {
		return -1
	}
	return o
}
