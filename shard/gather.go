package shard

// Threshold-pruned scatter-gather — the Fagin-style early-termination
// coordinator over per-shard incremental searches.
//
// The naive fan-out asks every shard for a full local top-k and merges the
// ≤ N·k candidates; at 8 shards that is 8 complete searches per query, which
// is why single-query latency *rises* with the shard count even as build
// throughput scales. The threshold-algorithm observation (Fagin et al.; see
// also the incremental access in PAPERS.md's trajectory and personal-trace
// search entries) is that the coordinator only needs each shard's results
// down to the global k-th degree: every digitaltraces.Search streams results
// in exact rank order together with an admissible upper bound on its
// remainder (Search.Bound), so once the merged k-th result strictly beats a
// shard's bound, nothing that shard has not yet emitted can enter the global
// answer — that shard's search stops where it stands, leaf scans unperformed.
//
// # Exactness
//
// boundedGather returns exactly mergeEntries over the full per-shard streams
// (the naive answer), by the prefix-cut argument:
//
//   - Each stream is in its shard's exact order, so a pulled prefix is a
//     prefix of the full list; the k-way merge consumes lists in order, so
//     merging prefixes instead of full lists can only change the answer if
//     an unpulled element belonged in it.
//   - A shard is only cut when its bound b satisfies kth > b, where kth is
//     the k-th merged degree over current prefixes. Every unpulled element
//     has degree ≤ b < kth, and the final merged k-th degree only grows as
//     prefixes extend, so the element is strictly dominated by k merged
//     results — under any tie-break, it cannot displace them. The cut must
//     be strict: bounds cap degrees only, so an unpulled element at degree
//     == kth could still win on the (ordinal, name) tie-break.
//   - A shard that reaches k+1 pulled entries is cut unconditionally: at
//     most one of them is the excluded self, so ≥ k same-shard entries
//     precede every unpulled element in the shard's own exact order; if an
//     unpulled element made the global top-k, those k would too — k+1 > k.
//     This cap also bounds the worst case (a degree plateau across shards)
//     at the naive fan-out's k+1 per shard, never worse.
//
// Rounds double the per-shard batch size, so a hot shard that owns the whole
// answer is drained in O(log k) rounds while shards whose first result is
// already dominated are pulled exactly once.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"digitaltraces"
)

// pullReq asks one stream for up to want more results.
type pullReq struct {
	stream int
	want   int
}

// pullResp carries one stream's round: the results pulled (in stream order,
// after the slot-ownership filter), how many the stream actually surrendered
// before filtering (raw — liveness must be judged pre-filter, or a stream
// whose whole batch was foreign copies would be declared dry with owned
// candidates still unpulled), the stream's bound after the pull, whether
// more results may remain, and the wall-clock the pull cost (attributed to
// the stream's shard).
type pullResp struct {
	entries []entry
	raw     int
	bound   float64
	live    bool
	took    time.Duration
}

// streamReport is one stream's share of a boundedGather, index-aligned with
// the streams: what it surrendered, how it ended, and what it cost.
type streamReport struct {
	pulled    int
	rounds    int
	cut       bool // stopped by the threshold or the k+1 cap while live
	exhausted bool // ran dry
	bound     float64
	latency   time.Duration
}

// gatherReport describes one boundedGather run: the per-stream breakdown,
// the coordinator's cumulative merge time (the cost not attributable to any
// stream — the satellite-2 attribution split), and the merged k-th degree
// the cuts fired against (0 when fewer than k results exist).
type gatherReport struct {
	streams []streamReport
	merge   time.Duration
	kth     float64
}

// boundedGather merges n incremental streams into the global top-k with
// threshold early termination, excluding the named entity. pull must
// fulfill every request of a round (it may fan out in parallel) and return
// responses in request order. Returns the merged answer, the number of
// excluded entries skipped, and the per-stream gather report.
//
// loose (nil = none) marks streams whose shard-local emission order no
// longer matches the global arrival order restricted to the shard — shards
// a slot migration has touched (slotmap.go). A loose stream loses the k+1
// cap (the cap's "≥ k same-shard entries precede every unpulled element
// *globally*" step needs the alignment) and its buffer is re-sorted under
// the global total order after every append, which restores the merge's
// sorted-input precondition: a pulled prefix is still tie-complete at the
// strict threshold cut — every unpulled element is strictly below the
// merged k-th degree — so sorting the prefix agrees with sorting the full
// list on everything that can reach the answer. For an aligned stream the
// sort is a no-op, so loose streams trade only pruning, never exactness.
func boundedGather(n, k int, exclude string, loose []bool, pull func([]pullReq) ([]pullResp, error)) ([]digitaltraces.Match, int, gatherReport, error) {
	bufs := make([][]entry, n)
	bounds := make([]float64, n)
	live := make([]bool, n)
	pulled := make([]int, n)
	rep := gatherReport{streams: make([]streamReport, n)}
	for i := range live {
		live[i] = true
		bounds[i] = 1 // degrees live in [0, 1]; an unpulled stream may hold anything
	}
	isLoose := func(i int) bool { return loose != nil && loose[i] }
	// The self entity consumes one slot wherever it ranks, so k+1 entries
	// from one shard always contain that shard's full possible contribution.
	// pulled counts post-filter (owned) entries, so the cap argument counts
	// the same entries the merge sees even when foreign copies interleave.
	limit := k + 1
	batch := (k + n - 1) / n
	if batch < 1 {
		batch = 1
	}
	for {
		mergeStart := time.Now()
		merged, excluded := mergeEntries(bufs, k, exclude)
		rep.merge += time.Since(mergeStart)
		var reqs []pullReq
		for i := 0; i < n; i++ {
			if !live[i] || (!isLoose(i) && pulled[i] >= limit) {
				continue
			}
			// Pull while the stream could still contribute: the answer is
			// short of k, or the stream's bound ties-or-beats the k-th
			// merged degree (ties can win on ordinal, so ≥, cut on <).
			if len(merged) < k || bounds[i] >= merged[k-1].Degree {
				want := batch
				if !isLoose(i) {
					if w := limit - pulled[i]; w < want {
						want = w
					}
				}
				reqs = append(reqs, pullReq{stream: i, want: want})
			}
		}
		if len(reqs) == 0 {
			if len(merged) == k && k > 0 {
				rep.kth = merged[k-1].Degree
			}
			for i := 0; i < n; i++ {
				rep.streams[i].pulled = pulled[i]
				rep.streams[i].bound = bounds[i]
				// A stream that still had candidates was stopped by the
				// coordinator (threshold cut or the k+1 cap); one that ran
				// dry exhausted itself.
				rep.streams[i].cut = live[i]
				rep.streams[i].exhausted = !live[i]
			}
			return merged, excluded, rep, nil
		}
		resps, err := pull(reqs)
		if err != nil {
			return nil, 0, rep, err
		}
		if len(resps) != len(reqs) {
			return nil, 0, rep, fmt.Errorf("shard: pull returned %d responses for %d requests", len(resps), len(reqs))
		}
		for j, r := range reqs {
			i := r.stream
			bufs[i] = append(bufs[i], resps[j].entries...)
			bounds[i] = resps[j].bound
			live[i] = resps[j].live
			pulled[i] += len(resps[j].entries)
			rep.streams[i].rounds++
			rep.streams[i].latency += resps[j].took
			if resps[j].raw == 0 {
				// No progress from a live stream would loop forever; a
				// stream that surrendered nothing (pre-filter) is done.
				live[i] = false
			}
			if isLoose(i) && len(resps[j].entries) > 0 {
				// Restore the merge's sorted-input precondition under the
				// global order; stable, so equal entries keep stream order.
				sort.SliceStable(bufs[i], func(a, b int) bool {
					return entryBefore(bufs[i][a], bufs[i][b])
				})
			}
		}
		batch *= 2
	}
}

// gatherSearches runs boundedGather over opened per-shard streams, pulling
// each round's requests in parallel — one Stream.Pull per stream per round,
// so a whole gather round against remote shards costs one concurrent wave of
// round trips — and resolving global ordinals for the pulled matches.
// streams must be non-nil and ords maps each stream to its shard ordinal;
// every pulled match is filtered by sm's ownership (an entity mid-migration
// is physically on two shards — exactly the copy sm says is the owner
// survives), and streams on sm-touched shards run loose. checked sums every
// stream's exact degree computations after termination (the quantity the
// pruning saves versus the naive full fan-out). The report's streams are
// aligned with streams.
func (c *Cluster) gatherSearches(sm *SlotMap, streams []Stream, ords []int, k int, exclude string) (out []digitaltraces.Match, checked int, rep gatherReport, err error) {
	loose := make([]bool, len(streams))
	for si, o := range ords {
		loose[si] = sm.touched[o]
	}
	pull := func(reqs []pullReq) ([]pullResp, error) {
		resps := make([]pullResp, len(reqs))
		errs := make([]error, len(reqs))
		var wg sync.WaitGroup
		for j := range reqs {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				pullStart := time.Now()
				ms, bound, live, err := streams[reqs[j].stream].Pull(reqs[j].want)
				if err != nil {
					errs[j] = err
					return
				}
				ord := ords[reqs[j].stream]
				es := make([]entry, 0, len(ms))
				for _, m := range ms {
					if sm.Owner(m.Entity) != ord {
						continue // foreign copy: migrated away, or shipped here under a newer map
					}
					es = append(es, entry{m: m})
				}
				resps[j] = pullResp{entries: es, raw: len(ms), bound: bound, live: live, took: time.Since(pullStart)}
			}(j)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		// Resolve ordinals once per round, outside the pull goroutines.
		c.mu.RLock()
		for j := range resps {
			for i := range resps[j].entries {
				resps[j].entries[i].rank = c.rankLocked(resps[j].entries[i].m.Entity)
			}
		}
		c.mu.RUnlock()
		return resps, nil
	}
	out, excluded, rep, err := boundedGather(len(streams), k, exclude, loose, pull)
	if err != nil {
		return nil, 0, rep, err
	}
	for _, s := range streams {
		checked += s.Checked()
	}
	// The home shard's example search scores the query entity itself (a
	// single DB never does); subtract what the merge skipped so
	// Checked/PE/Pruned stay comparable with single-DB numbers.
	checked -= excluded
	return out, checked, rep, nil
}
