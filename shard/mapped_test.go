package shard

// Mapped cluster envelope tests: SaveMappedIndex → LoadMappedIndex must boot
// a cluster with NO visit re-ingest and answer bit-identically to the saving
// cluster, across shard counts, including clusters with empty shards.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"digitaltraces"
)

// emptyCluster builds a shard-compatible cluster with nothing ingested.
func emptyCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Shards: shards,
		NewShard: func(i int) (*digitaltraces.DB, error) {
			return digitaltraces.NewGridDB(4, 0, digitaltraces.WithHashFunctions(32))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// saveMapped writes c's mapped envelope to a temp file and returns its path.
func saveMapped(t *testing.T, c *Cluster) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.map")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.SaveMappedIndex(f)
	if err != nil {
		t.Fatalf("SaveMappedIndex: %v", err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Size() {
		t.Fatalf("SaveMappedIndex reported %d bytes, wrote %d", n, st.Size())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sameTopK(t *testing.T, want, got digitaltraces.Engine, queries []string, k int) {
	t.Helper()
	for _, q := range queries {
		w, _, err := want.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := got.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("TopK(%s) diverges after mapped cluster restart:\n  loaded: %v\n  saved:  %v", q, g, w)
		}
	}
}

// TestClusterMappedRoundTrip: the no-re-ingest restart — an EMPTY cluster
// serves bit-identical answers straight off the envelope, reports itself
// mapped with live pool counters, and refuses the heap SaveIndex.
func TestClusterMappedRoundTrip(t *testing.T) {
	log := cityLog(t, 40)
	queries := []string{"entity-0", "entity-7", "entity-19", "entity-33"}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c1 := persistCluster(t, shards, log)
			defer c1.Close()
			if err := c1.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			path := saveMapped(t, c1)

			c2 := emptyCluster(t, shards)
			defer c2.Close()
			if err := c2.LoadMappedIndex(path); err != nil {
				t.Fatalf("LoadMappedIndex into an empty cluster: %v", err)
			}
			if got, want := c2.NumEntities(), c1.NumEntities(); got != want {
				t.Fatalf("mapped cluster adopted %d entities, want %d", got, want)
			}
			sameTopK(t, c1, c2, queries, 5)
			st := c2.IndexStats()
			if !st.Mapped {
				t.Error("IndexStats.Mapped = false on a mapped cluster")
			}
			if st.PoolHits+st.PoolMisses == 0 {
				t.Error("queries reported no buffer-pool traffic")
			}
			if st.DirtyCount != 0 {
				t.Errorf("dirty count = %d after a no-ingest mapped load, want 0", st.DirtyCount)
			}
			if _, err := c2.SaveIndex(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "SaveMappedIndex") {
				t.Errorf("cluster SaveIndex after mapped load: want refusal naming SaveMappedIndex, got %v", err)
			}
		})
	}
}

// TestClusterMappedReingestedLog: the envelope also loads over a cluster that
// re-ingested the same log (IDs and ordinals agree), and new visits after the
// load union-fold in — matching a cluster rebuilt over the grown log.
func TestClusterMappedReingestedLog(t *testing.T) {
	log := cityLog(t, 40)
	c1 := persistCluster(t, 4, log)
	defer c1.Close()
	if err := c1.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	path := saveMapped(t, c1)

	c2 := persistCluster(t, 4, log)
	defer c2.Close()
	if err := c2.LoadMappedIndex(path); err != nil {
		t.Fatalf("LoadMappedIndex over a re-ingested cluster: %v", err)
	}
	sameTopK(t, c1, c2, []string{"entity-0", "entity-19"}, 5)

	added := []digitaltraces.VisitRecord{
		{Entity: "entity-7", Venue: digitaltraces.VenueName(3), Start: digitaltraces.TimeAt(2), End: digitaltraces.TimeAt(4)},
		{Entity: "newcomer", Venue: digitaltraces.VenueName(8), Start: digitaltraces.TimeAt(5), End: digitaltraces.TimeAt(7)},
	}
	if _, err := c2.AddVisits(added); err != nil {
		t.Fatal(err)
	}
	ref := persistCluster(t, 4, append(append([]digitaltraces.VisitRecord{}, log...), added...))
	defer ref.Close()
	if err := ref.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	sameTopK(t, ref, c2, []string{"entity-7", "newcomer", "entity-19"}, 5)
}

// TestClusterMappedEmptyShard: empty shards write zero-length sections and
// stay index-less after the mapped load.
func TestClusterMappedEmptyShard(t *testing.T) {
	log := cityLog(t, 1) // one entity, four shards: most shards empty
	c1 := persistCluster(t, 4, log)
	defer c1.Close()
	if err := c1.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	path := saveMapped(t, c1)
	c2 := emptyCluster(t, 4)
	defer c2.Close()
	if err := c2.LoadMappedIndex(path); err != nil {
		t.Fatalf("LoadMappedIndex with empty shards: %v", err)
	}
	sameTopK(t, c1, c2, []string{"entity-0"}, 3)
}

// TestClusterMappedEnvelopeErrors: wrong shard count, wrong magic (a
// single-DB mapped file), and truncation all fail descriptively.
func TestClusterMappedEnvelopeErrors(t *testing.T) {
	log := cityLog(t, 20)
	c1 := persistCluster(t, 4, log)
	defer c1.Close()
	if err := c1.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	path := saveMapped(t, c1)

	t.Run("shard count mismatch", func(t *testing.T) {
		c2 := emptyCluster(t, 2)
		defer c2.Close()
		err := c2.LoadMappedIndex(path)
		if err == nil || !strings.Contains(err.Error(), "shard count") {
			t.Fatalf("want shard-count mismatch error, got: %v", err)
		}
	})
	t.Run("single-DB mapped file", func(t *testing.T) {
		dbPath := filepath.Join(t.TempDir(), "db.map")
		f, err := os.Create(dbPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c1.shards[0].(local).SaveMappedIndex(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		c2 := emptyCluster(t, 4)
		defer c2.Close()
		err = c2.LoadMappedIndex(dbPath)
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want magic error, got: %v", err)
		}
	})
	t.Run("truncated envelope", func(t *testing.T) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := filepath.Join(t.TempDir(), "cut.map")
		if err := os.WriteFile(cut, raw[:len(raw)-4096], 0o644); err != nil {
			t.Fatal(err)
		}
		c2 := emptyCluster(t, 4)
		defer c2.Close()
		err = c2.LoadMappedIndex(cut)
		if err == nil || !strings.Contains(err.Error(), "claims") {
			t.Fatalf("want size-mismatch error, got: %v", err)
		}
	})
}
