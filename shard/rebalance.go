package shard

// Skew-aware rebalancing: turn the placement statistics ShardStats already
// exposes into a plan of slot moves, then execute it with MigrateSlot.
// Personal-trace workloads are heavily skewed across users and sources, so
// hash placement alone leaves hot shards hot forever; the planner here is
// deliberately greedy and local — shave the most-loaded shard toward the
// least-loaded one, one slot at a time — because each move is live and
// exact, so there is no penalty for executing a plan incrementally and
// re-planning later as the skew drifts.

import "fmt"

// SlotLoads counts the entities owned by each slot, from the global
// registry. This is the planner's load signal: it reflects ownership under
// any map (SlotOf is map-independent) and, unlike per-shard physical counts,
// is immune to the stale copies migrations leave behind.
func (c *Cluster) SlotLoads() [NumSlots]int {
	var loads [NumSlots]int
	c.mu.RLock()
	for name := range c.ord {
		loads[SlotOf(name)]++
	}
	c.mu.RUnlock()
	return loads
}

// SlotMove is one step of a rebalance plan: reassign Slot from shard From to
// shard To.
type SlotMove struct {
	Slot int `json:"slot"`
	From int `json:"from"`
	To   int `json:"to"`
}

// PlanRebalance computes up to maxMoves slot moves that reduce the per-shard
// owned-entity skew of assign (slot→shard, NumSlots entries) given per-slot
// loads. Greedy: each step moves, from the currently most-loaded shard to
// the currently least-loaded one, the slot whose load is closest to half
// their gap without overshooting — the move that best evens that pair — and
// stops when no single slot still helps. Pure over its inputs, so planning
// is testable (and previewable) without touching a cluster.
func PlanRebalance(assign []int, loads [NumSlots]int, shards, maxMoves int) []SlotMove {
	if shards < 2 || len(assign) != NumSlots {
		return nil
	}
	totals := make([]int, shards)
	owner := make([]int, NumSlots)
	copy(owner, assign)
	for s, sh := range owner {
		totals[sh] += loads[s]
	}
	var plan []SlotMove
	for len(plan) < maxMoves {
		max, min := 0, 0
		for sh := range totals {
			if totals[sh] > totals[max] {
				max = sh
			}
			if totals[sh] < totals[min] {
				min = sh
			}
		}
		gap := totals[max] - totals[min]
		if gap < 2 {
			break // within one entity of even — nothing a move can improve
		}
		// The slot to move: load as close to gap/2 as possible, but strictly
		// inside (0, gap) so the move strictly shrinks this pair's spread.
		best, bestDist := -1, 0
		for s, sh := range owner {
			if sh != max {
				continue
			}
			l := loads[s]
			if l <= 0 || l >= gap {
				continue
			}
			d := 2*l - gap // distance from gap/2, times 2 (stays integral)
			if d < 0 {
				d = -d
			}
			if best == -1 || d < bestDist || (d == bestDist && s < best) {
				best, bestDist = s, d
			}
		}
		if best == -1 {
			break // every movable slot would overshoot (or is empty)
		}
		owner[best] = min
		totals[max] -= loads[best]
		totals[min] += loads[best]
		plan = append(plan, SlotMove{Slot: best, From: max, To: min})
	}
	return plan
}

// RebalanceReport summarizes one Rebalance call: the moves executed and the
// owned-entity skew on both sides — max and mean per-shard owned counts,
// plus their ratio (1.0 = perfectly even).
type RebalanceReport struct {
	Moves      []SlotMove `json:"moves"`
	BeforeMax  int        `json:"before_max"`
	BeforeMean float64    `json:"before_mean"`
	BeforeSkew float64    `json:"before_skew"`
	AfterMax   int        `json:"after_max"`
	AfterMean  float64    `json:"after_mean"`
	AfterSkew  float64    `json:"after_skew"`
}

// ownedSkew computes the (max, mean, max/mean) of per-shard owned-entity
// counts under the current map.
func (c *Cluster) ownedSkew() (int, float64, float64) {
	loads := c.SlotLoads()
	sm := c.slotmap()
	totals := make([]int, len(c.shards))
	for s, cnt := range loads {
		totals[sm.assign[s]] += cnt
	}
	max, sum := 0, 0
	for _, t := range totals {
		if t > max {
			max = t
		}
		sum += t
	}
	mean := float64(sum) / float64(len(totals))
	skew := 1.0
	if mean > 0 {
		skew = float64(max) / mean
	}
	return max, mean, skew
}

// Rebalance plans against the current registry and slot map, then executes
// the plan with live MigrateSlot calls, sequentially — each move fences only
// its own slot, and a short queue of exact moves beats one long freeze.
// maxMoves ≤ 0 means "as many as keep helping" (at most NumSlots). Safe to
// call on a balanced cluster: the plan comes back empty and nothing moves.
func (c *Cluster) Rebalance(maxMoves int) (RebalanceReport, error) {
	if maxMoves <= 0 {
		maxMoves = NumSlots
	}
	var rep RebalanceReport
	rep.BeforeMax, rep.BeforeMean, rep.BeforeSkew = c.ownedSkew()
	loads := c.SlotLoads()
	plan := PlanRebalance(c.slotmap().Assignment(), loads, len(c.shards), maxMoves)
	for _, mv := range plan {
		if err := c.MigrateSlot(mv.Slot, mv.To); err != nil {
			rep.AfterMax, rep.AfterMean, rep.AfterSkew = c.ownedSkew()
			return rep, fmt.Errorf("shard: rebalance move %d/%d (slot %d → shard %d): %w",
				len(rep.Moves)+1, len(plan), mv.Slot, mv.To, err)
		}
		rep.Moves = append(rep.Moves, mv)
	}
	rep.AfterMax, rep.AfterMean, rep.AfterSkew = c.ownedSkew()
	return rep, nil
}
