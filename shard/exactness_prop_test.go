package shard

// Randomized exactness property suite for the threshold-pruned scatter-
// gather: over random visit logs — varying entity counts, time horizons,
// deliberately duplicated visit patterns (exact degree ties) and post-build
// dirty fractions — the pruned fan-out, the naive full fan-out and a single
// DB must return bit-identical answers, tie order included, for
// N ∈ {1, 2, 4, 8} shards. Run under -race this also exercises the
// coordinator's parallel pull rounds against concurrent lazy refreshes.

import (
	"fmt"
	"math/rand"
	"testing"

	"digitaltraces"
	"digitaltraces/shard/internal/proptest"
)

const (
	propSide   = proptest.Side // 16 venues
	propLevels = proptest.Levels
	propHash   = proptest.Hash
)

// randomLog delegates to the shared generator (internal/proptest), which
// shard/remote reuses to run this identical adversarial workload against
// loopback remote shards.
func randomLog(rng *rand.Rand, entities, horizonHours int) []digitaltraces.VisitRecord {
	return proptest.RandomLog(rng, entities, horizonHours)
}

func propDB(t *testing.T) *digitaltraces.DB {
	t.Helper()
	db, err := proptest.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func propCluster(t *testing.T, src *digitaltraces.DB, n int) *Cluster {
	t.Helper()
	c, err := Partition(src, Config{
		Shards: n,
		NewShard: func(i int) (*digitaltraces.DB, error) {
			return proptest.NewDB()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// comparePaths asserts pruned ≡ naive ≡ single for one query set.
func comparePaths(t *testing.T, label string, db *digitaltraces.DB, c *Cluster, entities []string, ks []int) {
	t.Helper()
	for _, q := range entities {
		for _, k := range ks {
			want, _, err := db.TopK(q, k)
			if err != nil {
				t.Fatalf("%s: single TopK(%s,%d): %v", label, q, k, err)
			}
			pruned, _, err := c.TopK(q, k)
			if err != nil {
				t.Fatalf("%s: pruned TopK(%s,%d): %v", label, q, k, err)
			}
			naive, _, err := c.topKNaive(q, k)
			if err != nil {
				t.Fatalf("%s: naive TopK(%s,%d): %v", label, q, k, err)
			}
			requireSameMatches(t, fmt.Sprintf("%s: pruned vs single TopK(%s,%d)", label, q, k), pruned, want)
			requireSameMatches(t, fmt.Sprintf("%s: naive vs single TopK(%s,%d)", label, q, k), naive, want)
		}
		// Query-by-example through the same three paths, using the entity's
		// own visits (the densest overlap structure available).
		visits, err := db.VisitsOf(q)
		if err != nil {
			t.Fatal(err)
		}
		k := ks[len(ks)-1]
		want, _, err := db.TopKByExample(visits, k)
		if err != nil {
			t.Fatal(err)
		}
		pruned, _, err := c.TopKByExample(visits, k)
		if err != nil {
			t.Fatal(err)
		}
		naive, _, err := c.topKByExampleNaive(visits, k)
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, fmt.Sprintf("%s: pruned vs single ByExample(%s,%d)", label, q, k), pruned, want)
		requireSameMatches(t, fmt.Sprintf("%s: naive vs single ByExample(%s,%d)", label, q, k), naive, want)
	}
}

// TestPrunedGatherExactnessProperty is the randomized acceptance property.
// Each trial builds one random log, replays it into a single DB and into
// clusters of 1/2/4/8 shards, compares all three query paths bit-for-bit,
// then dirties a random fraction of entities with fresh visits and compares
// again (the query paths fold the dirt lazily on both sides).
func TestPrunedGatherExactnessProperty(t *testing.T) {
	trials := []struct {
		seed         int64
		entities     int
		horizonHours int
	}{
		{seed: 1, entities: 24, horizonHours: 24},
		{seed: 2, entities: 60, horizonHours: 48},
		{seed: 3, entities: 90, horizonHours: 12}, // dense: short horizon, many collisions
	}
	for _, tr := range trials {
		tr := tr
		t.Run(fmt.Sprintf("seed=%d/entities=%d", tr.seed, tr.entities), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tr.seed))
			log := randomLog(rng, tr.entities, tr.horizonHours)

			db := propDB(t)
			if _, err := db.AddVisits(log); err != nil {
				t.Fatal(err)
			}
			if err := db.BuildIndex(); err != nil {
				t.Fatal(err)
			}

			// Sample queries: include entity 0 (often heavily cloned) and a
			// random spread. k beyond the population exercises the zero-tail
			// and exhaustion paths.
			queried := map[string]bool{"e000": true}
			for len(queried) < 5 {
				queried[fmt.Sprintf("e%03d", rng.Intn(tr.entities))] = true
			}
			var entities []string
			for q := range queried {
				entities = append(entities, q)
			}
			ks := []int{1, 3, 10, tr.entities + 5}

			for _, n := range []int{1, 2, 4, 8} {
				c := propCluster(t, db, n)
				if err := c.BuildIndex(); err != nil {
					t.Fatal(err)
				}
				comparePaths(t, fmt.Sprintf("clean/shards=%d", n), db, c, entities, ks)

				// Dirty a random ~30% of entities with fresh visits inside
				// the indexed horizon, replayed identically into both the
				// single DB's log position and the cluster's. Queries must
				// agree again — each side folds its own dirt lazily.
				var dirt []digitaltraces.VisitRecord
				for e := 0; e < tr.entities; e++ {
					if rng.Float64() > 0.3 {
						continue
					}
					h := rng.Intn(tr.horizonHours)
					dirt = append(dirt, digitaltraces.VisitRecord{
						Entity: fmt.Sprintf("e%03d", e),
						Venue:  digitaltraces.VenueName(rng.Intn(propSide * propSide)),
						Start:  digitaltraces.TimeAt(h),
						End:    digitaltraces.TimeAt(h + 1),
					})
				}
				if len(dirt) > 0 {
					if _, err := db.AddVisits(dirt); err != nil {
						t.Fatal(err)
					}
					if _, err := c.AddVisits(dirt); err != nil {
						t.Fatal(err)
					}
					comparePaths(t, fmt.Sprintf("dirty/shards=%d", n), db, c, entities, ks)
					// Re-sync the single DB for the next cluster size: fold
					// everything so the next Partition replay sees one state.
					if err := db.Refresh(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}
