// Package proptest holds the shared random-visit-log generator behind the
// scatter-gather exactness property suites. It lives outside the shard
// package's own test files so that shard/remote can run the identical
// adversarial workload against a cluster of loopback remote shards — the
// acceptance bar for the network transport is the same bit-identical
// equivalence the in-process cluster proves.
package proptest

import (
	"fmt"
	"math/rand"

	"digitaltraces"
)

// Grid parameters every suite DB shares: 16 venues, 3 hierarchy levels, 16
// hash functions — small enough that trials are fast, collision-rich enough
// that tie-breaking and bound slack are genuinely exercised.
const (
	Side   = 4
	Levels = 3
	Hash   = 16
)

// NewDB builds a suite-compatible grid DB.
func NewDB() (*digitaltraces.DB, error) {
	return digitaltraces.NewGridDB(Side, Levels, digitaltraces.WithHashFunctions(Hash))
}

// RandomLog generates a visit log with adversarial degree structure:
//   - base entities visit random venues at random hours inside the trial's
//     horizon;
//   - a slice of clone entities replays another entity's exact visits, so
//     every query degree ties between the original and its clones and only
//     the ingest-order tie-break separates them;
//   - a slice of strangers visits inside a disjoint time window, producing
//     degree-0 ties against most queries (the k-th boundary a non-canonical
//     termination would resolve by tree shape instead of the contract).
func RandomLog(rng *rand.Rand, entities, horizonHours int) []digitaltraces.VisitRecord {
	numVenues := Side * Side
	visitsOf := make([][]digitaltraces.VisitRecord, entities)
	kind := make([]int, entities) // 0 base, 1 clone, 2 stranger
	for e := 1; e < entities; e++ {
		switch r := rng.Float64(); {
		case r < 0.25:
			kind[e] = 1
		case r < 0.40:
			kind[e] = 2
		}
	}
	for e := 0; e < entities; e++ {
		name := fmt.Sprintf("e%03d", e)
		if kind[e] == 1 {
			// Clone an earlier entity's visits verbatim under a new name.
			src := rng.Intn(e)
			for _, v := range visitsOf[src] {
				visitsOf[e] = append(visitsOf[e], digitaltraces.VisitRecord{
					Entity: name, Venue: v.Venue, Start: v.Start, End: v.End,
				})
			}
			if len(visitsOf[e]) > 0 {
				continue
			}
			// Source had none (can't happen — everyone gets ≥ 1 below), but
			// fall through to a normal trace rather than an empty entity.
		}
		lo, span := 0, horizonHours
		if kind[e] == 2 {
			// Strangers live in the back half of the horizon only.
			lo, span = horizonHours, horizonHours/2+1
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			h := lo + rng.Intn(span)
			visitsOf[e] = append(visitsOf[e], digitaltraces.VisitRecord{
				Entity: name,
				Venue:  digitaltraces.VenueName(rng.Intn(numVenues)),
				Start:  digitaltraces.TimeAt(h),
				End:    digitaltraces.TimeAt(h + 1 + rng.Intn(3)),
			})
		}
	}
	var log []digitaltraces.VisitRecord
	for _, vs := range visitsOf {
		log = append(log, vs...)
	}
	return log
}

// Dirt generates fresh in-horizon visits for a random ~30% of the named
// entities — the post-build lazy-refresh workload every suite replays
// identically into each compared engine.
func Dirt(rng *rand.Rand, entities, horizonHours int) []digitaltraces.VisitRecord {
	var dirt []digitaltraces.VisitRecord
	for e := 0; e < entities; e++ {
		if rng.Float64() > 0.3 {
			continue
		}
		h := rng.Intn(horizonHours)
		dirt = append(dirt, digitaltraces.VisitRecord{
			Entity: fmt.Sprintf("e%03d", e),
			Venue:  digitaltraces.VenueName(rng.Intn(Side * Side)),
			Start:  digitaltraces.TimeAt(h),
			End:    digitaltraces.TimeAt(h + 1),
		})
	}
	return dirt
}

// SampleQueries picks a deterministic query set: entity 0 (often heavily
// cloned) plus a random spread.
func SampleQueries(rng *rand.Rand, entities int) []string {
	queried := map[string]bool{"e000": true}
	for len(queried) < 5 {
		queried[fmt.Sprintf("e%03d", rng.Intn(entities))] = true
	}
	var out []string
	for q := range queried {
		out = append(out, q)
	}
	return out
}
