package shard

import (
	"math"

	"digitaltraces"
)

// entry is one per-shard candidate inside the merge: the match plus its
// global first-arrival ordinal (resolved from the cluster registry once,
// outside the selection loop).
type entry struct {
	m    digitaltraces.Match
	rank int
}

// merge folds per-shard exact top-k lists into the global top-k by k-way
// merge: repeatedly take the best list head under (degree descending, global
// ingest ordinal ascending, name ascending). Entries within one shard's list
// are never reordered.
//
// That last property carries the losslessness proof. The load-bearing degree
// ties are between entities of the *same* shard — they competed for that
// shard's local cut, and an entity the shard cut is dominated by ≥ k
// entities from that shard alone, in the shard's own exact order. Because
// the merge consumes each list strictly in order, the merged output's
// same-shard relative order always equals the shard's order, whatever that
// order is — so the cut argument holds unconditionally, without assuming the
// cluster-wide registry agrees with shard-internal ID assignment (under
// racing ingest of new entities it may not). Cross-shard ties compare by the
// global first-arrival ordinal, where any fixed choice is lossless since
// entities on different shards never compete for the same local cut.
//
// Under sequential ingest, shard-local ID order is exactly the global
// arrival order restricted to the shard, so each list is sorted by (degree,
// global ordinal) and the k-way merge reproduces the single DB's full
// ranking bit-for-bit — the TestClusterExactness invariant. Under racing
// ingest the answer remains the exact top-k by degree; only the order among
// racing tied entities depends on arrival interleaving.
func (c *Cluster) merge(lists [][]digitaltraces.Match, k int) []digitaltraces.Match {
	out, _ := c.mergeExcluding(lists, k, "")
	return out
}

// mergeExcluding merges like merge but drops the named entity, returning how
// many entries were dropped (the query-by-example fan-out has no notion of
// "self", so TopK excludes the query entity here and corrects the Checked
// statistic by the dropped count).
func (c *Cluster) mergeExcluding(lists [][]digitaltraces.Match, k int, exclude string) ([]digitaltraces.Match, int) {
	entries := make([][]entry, len(lists))
	c.mu.RLock()
	for i, l := range lists {
		entries[i] = make([]entry, len(l))
		for j, m := range l {
			entries[i][j] = entry{m: m, rank: c.rankLocked(m.Entity)}
		}
	}
	c.mu.RUnlock()
	return mergeEntries(entries, k, exclude)
}

// rankLocked resolves an entity's global first-arrival ordinal; callers hold
// c.mu. Unknown names (defensive: every answer was ingested through the
// router) sort last.
func (c *Cluster) rankLocked(entity string) int {
	if o, ok := c.ord[entity]; ok {
		return o
	}
	return math.MaxInt
}

// mergeEntries is the pure k-way selection the cluster's merge — and the
// bounded gather's termination checks — run on: per-shard candidate lists,
// each already in its shard's exact order, folded into the global top-k
// under (degree descending, rank ascending, name ascending), skipping the
// excluded entity. It returns the merged matches and how many entries were
// excluded. Pure over its inputs (no cluster state), which is what makes the
// merge/termination logic fuzzable in isolation (FuzzBoundedGather).
func mergeEntries(lists [][]entry, k int, exclude string) ([]digitaltraces.Match, int) {
	pos := make([]int, len(lists))
	out := make([]digitaltraces.Match, 0, k)
	excluded := 0
	for len(out) < k {
		best := -1
		for i := range lists {
			for exclude != "" && pos[i] < len(lists[i]) && lists[i][pos[i]].m.Entity == exclude {
				pos[i]++
				excluded++
			}
			if pos[i] >= len(lists[i]) {
				continue
			}
			if best == -1 || entryBefore(lists[i][pos[i]], lists[best][pos[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][pos[best]].m)
		pos[best]++
	}
	return out, excluded
}

// entryBefore reports whether head a outranks head b: degree descending,
// global ordinal ascending, name ascending.
func entryBefore(a, b entry) bool {
	if a.m.Degree != b.m.Degree {
		return a.m.Degree > b.m.Degree
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.m.Entity < b.m.Entity
}
