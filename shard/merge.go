package shard

import (
	"math"

	"digitaltraces"
)

// merge folds per-shard exact top-k lists into the global top-k by k-way
// merge: repeatedly take the best list head under (degree descending, global
// ingest ordinal ascending, name ascending). Entries within one shard's list
// are never reordered.
//
// That last property carries the losslessness proof. The load-bearing degree
// ties are between entities of the *same* shard — they competed for that
// shard's local cut, and an entity the shard cut is dominated by ≥ k
// entities from that shard alone, in the shard's own exact order. Because
// the merge consumes each list strictly in order, the merged output's
// same-shard relative order always equals the shard's order, whatever that
// order is — so the cut argument holds unconditionally, without assuming the
// cluster-wide registry agrees with shard-internal ID assignment (under
// racing ingest of new entities it may not). Cross-shard ties compare by the
// global first-arrival ordinal, where any fixed choice is lossless since
// entities on different shards never compete for the same local cut.
//
// Under sequential ingest, shard-local ID order is exactly the global
// arrival order restricted to the shard, so each list is sorted by (degree,
// global ordinal) and the k-way merge reproduces the single DB's full
// ranking bit-for-bit — the TestClusterExactness invariant. Under racing
// ingest the answer remains the exact top-k by degree; only the order among
// racing tied entities depends on arrival interleaving.
func (c *Cluster) merge(lists [][]digitaltraces.Match, k int) []digitaltraces.Match {
	out, _ := c.mergeExcluding(lists, k, "")
	return out
}

// mergeExcluding merges like merge but drops the named entity, returning how
// many entries were dropped (the query-by-example fan-out has no notion of
// "self", so TopK excludes the query entity here and corrects the Checked
// statistic by the dropped count).
func (c *Cluster) mergeExcluding(lists [][]digitaltraces.Match, k int, exclude string) ([]digitaltraces.Match, int) {
	// Snapshot the ordinals of every candidate once, outside the selection
	// loop.
	ranks := make([][]int, len(lists))
	c.mu.RLock()
	for i, l := range lists {
		ranks[i] = make([]int, len(l))
		for j, m := range l {
			if o, ok := c.ord[m.Entity]; ok {
				ranks[i][j] = o
			} else { // defensive: every answer was ingested through the router
				ranks[i][j] = math.MaxInt
			}
		}
	}
	c.mu.RUnlock()

	pos := make([]int, len(lists))
	out := make([]digitaltraces.Match, 0, k)
	excluded := 0
	for len(out) < k {
		best := -1
		for i := range lists {
			for exclude != "" && pos[i] < len(lists[i]) && lists[i][pos[i]].Entity == exclude {
				pos[i]++
				excluded++
			}
			if pos[i] >= len(lists[i]) {
				continue
			}
			if best == -1 || headBefore(lists[i][pos[i]], ranks[i][pos[i]], lists[best][pos[best]], ranks[best][pos[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, lists[best][pos[best]])
		pos[best]++
	}
	return out, excluded
}

// headBefore reports whether head a outranks head b: degree descending,
// global ordinal ascending, name ascending.
func headBefore(a digitaltraces.Match, aRank int, b digitaltraces.Match, bRank int) bool {
	if a.Degree != b.Degree {
		return a.Degree > b.Degree
	}
	if aRank != bRank {
		return aRank < bRank
	}
	return a.Entity < b.Entity
}
