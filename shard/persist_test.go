package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"digitaltraces"
)

// persistCluster builds an N-shard cluster over a deterministic synthetic
// city's visit log.
func persistCluster(t *testing.T, shards int, log []digitaltraces.VisitRecord) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Shards: shards,
		NewShard: func(i int) (*digitaltraces.DB, error) {
			return digitaltraces.NewGridDB(4, 0, digitaltraces.WithHashFunctions(32))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.AddVisits(log); err != nil || n != len(log) {
		t.Fatalf("ingest: %d of %d, err %v", n, len(log), err)
	}
	return c
}

func cityLog(t *testing.T, entities int) []digitaltraces.VisitRecord {
	t.Helper()
	src, err := digitaltraces.SyntheticCity(digitaltraces.CityConfig{Side: 4, Entities: entities, Days: 3}, digitaltraces.WithHashFunctions(32))
	if err != nil {
		t.Fatal(err)
	}
	return src.AllVisits()
}

// TestClusterSaveLoadRoundTrip: a warm-restarted cluster (re-ingest the log,
// LoadIndex the envelope) answers bit-identically to the cluster that saved
// it — and to a single rebuilt DB over the same data, preserving the
// cluster exactness invariant through persistence.
func TestClusterSaveLoadRoundTrip(t *testing.T) {
	log := cityLog(t, 40)
	queries := []string{"entity-0", "entity-7", "entity-19", "entity-33"}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c1 := persistCluster(t, shards, log)
			if err := c1.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := c1.SaveIndex(&buf)
			if err != nil {
				t.Fatalf("SaveIndex: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("SaveIndex reported %d bytes, wrote %d", n, buf.Len())
			}

			c2 := persistCluster(t, shards, log)
			if err := c2.LoadIndex(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("LoadIndex: %v", err)
			}
			if got, want := c2.IndexStats().Entities, c1.IndexStats().Entities; got != want {
				t.Fatalf("loaded cluster indexes %d entities, want %d", got, want)
			}
			for _, q := range queries {
				w, _, err := c1.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				g, _, err := c2.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("TopK(%s) diverges after cluster warm restart:\n  loaded: %v\n  saved:  %v", q, g, w)
				}
			}
		})
	}
}

// TestClusterLoadIndexShardCountChange: a slot-mapped envelope saved at one
// shard count loads into a cluster of another — sections are matched to
// shards by slot overlap and loaded leniently — and the restarted cluster
// answers bit-identically to the one that saved it.
func TestClusterLoadIndexShardCountChange(t *testing.T) {
	log := cityLog(t, 40)
	queries := []string{"entity-0", "entity-7", "entity-19", "entity-33"}
	c4 := persistCluster(t, 4, log)
	if err := c4.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c4.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("into=%d", shards), func(t *testing.T) {
			c2 := persistCluster(t, shards, log)
			if err := c2.LoadIndex(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("LoadIndex 4→%d: %v", shards, err)
			}
			for _, q := range queries {
				w, _, err := c4.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				g, _, err := c2.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("TopK(%s) diverges after 4→%d reload:\n  loaded: %v\n  saved:  %v", q, shards, g, w)
				}
			}
		})
	}
}

// TestClusterLoadIndexLegacyShardCountMismatch: a pre-slot-map (MSIGCLUST1)
// envelope carries no slot map, so its sections can only load i→i and a
// different shard count is refused with an error that names the way out.
func TestClusterLoadIndexLegacyShardCountMismatch(t *testing.T) {
	log := cityLog(t, 20)
	// Synthesize a legacy envelope: the V1 layout is magic + shard count +
	// per-shard length-prefixed sections, with no slot map.
	var legacy bytes.Buffer
	legacy.WriteString("MSIGCLUST1\n")
	binary.Write(&legacy, binary.LittleEndian, uint64(4))
	for i := 0; i < 4; i++ {
		binary.Write(&legacy, binary.LittleEndian, uint64(0))
	}
	c2 := persistCluster(t, 2, log)
	err := c2.LoadIndex(bytes.NewReader(legacy.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "shard count") {
		t.Fatalf("want shard-count mismatch error, got: %v", err)
	}
	if !strings.Contains(err.Error(), "re-save") {
		t.Fatalf("legacy refusal should point at re-saving under the slot-mapped format, got: %v", err)
	}
	// At the matching count the same legacy envelope loads (empty sections:
	// every shard just stays index-less).
	c4 := persistCluster(t, 4, log)
	if err := c4.LoadIndex(bytes.NewReader(legacy.Bytes())); err != nil {
		t.Fatalf("legacy envelope at matching count: %v", err)
	}
}

// TestClusterLoadIndexEnvelopeErrors: bad magic and truncation are
// descriptive errors, and a single-DB snapshot fed to a cluster is caught
// at the magic.
func TestClusterLoadIndexEnvelopeErrors(t *testing.T) {
	log := cityLog(t, 20)
	c := persistCluster(t, 2, log)
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	c2 := persistCluster(t, 2, log)
	for _, cut := range []int{0, 5, 15, 25, len(good) / 2, len(good) - 3} {
		if err := c2.LoadIndex(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncated envelope (%d of %d bytes) accepted", cut, len(good))
		}
	}

	// A single-DB snapshot is not a cluster envelope.
	var dbSnap bytes.Buffer
	if _, err := c.shards[0].SaveIndex(&dbSnap); err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadIndex(bytes.NewReader(dbSnap.Bytes())); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("single-DB snapshot accepted as cluster envelope: %v", err)
	}
}

// TestClusterSaveLoadWithEmptyShard: a cluster where the router left a
// shard empty still round-trips (the empty shard writes an empty section
// and stays index-less).
func TestClusterSaveLoadWithEmptyShard(t *testing.T) {
	// One entity, many shards: most shards are empty.
	var log []digitaltraces.VisitRecord
	for _, v := range cityLog(t, 1) {
		log = append(log, v)
	}
	c1 := persistCluster(t, 4, log)
	if err := c1.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c1.SaveIndex(&buf); err != nil {
		t.Fatalf("SaveIndex with empty shards: %v", err)
	}
	c2 := persistCluster(t, 4, log)
	if err := c2.LoadIndex(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadIndex with empty shards: %v", err)
	}
	w, _, err := c1.TopK("entity-0", 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := c2.TopK("entity-0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("answers diverge: %v vs %v", g, w)
	}
}
