package shard

// Cluster-level query tracing: the coordinator records one obs.QueryTrace
// per TopK/TopKByExample/TopKBatch-item with the per-shard scatter-gather
// breakdown the single-DB tracer cannot see — which shards were touched,
// what each surrendered before the threshold cut, and how the wall-clock
// split between per-shard pulls and the coordinator merge. Config.TraceSize
// ≤ 0 (the default) leaves the tracer nil and every record call a no-op.

import (
	"encoding/binary"
	"time"

	"digitaltraces"
	"digitaltraces/internal/obs"
)

// gatherDetail is the trace-grade breakdown of one cluster query, threaded
// from the gather (or the naive scatter) up to the trace recorder. It is
// collected unconditionally — QueryStats.Shards/Pulled/Merge report from it
// even with tracing off — and costs one small slice per query.
type gatherDetail struct {
	shards      []obs.ShardTrace
	generations []uint64 // per-shard generation vector, aligned with c.shards
	merge       time.Duration
	kth         float64
	pulled      int // candidates drawn across shards (sum of shards[i].Pulled)
}

// Tracer exposes the cluster's coordinator-level query tracer — nil when
// Config.TraceSize was ≤ 0. Per-shard DB tracers stay empty under cluster
// queries (the fan-out streams through the incremental search path, not the
// shard's TopK), so this is the one place cluster queries are recorded.
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// record writes one cluster query's trace and feeds the latency histograms.
// No-op when tracing is disabled.
func (c *Cluster) record(kind obs.Kind, entity string, k int, batchID uint64, out []digitaltraces.Match, qs digitaltraces.QueryStats, d gatherDetail, err error, start time.Time) {
	if c.tracer == nil {
		return
	}
	qt := obs.QueryTrace{
		Kind:        kind,
		BatchID:     batchID,
		Entity:      entity,
		K:           k,
		Generations: d.generations,
		CacheHit:    qs.CacheHit,
		Checked:     qs.Checked,
		Pulled:      d.pulled,
		KthDegree:   d.kth,
		Shards:      d.shards,
		Merge:       d.merge,
		Start:       start,
		Total:       time.Since(start),
	}
	if qt.KthDegree == 0 && len(out) == k && k > 0 {
		qt.KthDegree = out[k-1].Degree // cache hits skip the gather; read it off the answer
	}
	if err != nil {
		qt.Err = err.Error()
	}
	c.tracer.Record(qt)
	if d.merge > 0 {
		c.tracer.Observe(obs.KindMerge, d.merge)
	}
}

// detailFromReport maps a gatherReport (stream-indexed) back to shard
// ordinals and fills in what only the coordinator knows: each stream's
// shard, pinned generation and raw checked count.
func detailFromReport(rep gatherReport, ords []int, streams []Stream) gatherDetail {
	d := gatherDetail{merge: rep.merge, kth: rep.kth, shards: make([]obs.ShardTrace, len(rep.streams))}
	for i, sr := range rep.streams {
		d.pulled += sr.pulled
		d.shards[i] = obs.ShardTrace{
			Shard:      ords[i],
			Generation: streams[i].Generation(),
			Pulled:     sr.pulled,
			Rounds:     sr.rounds,
			Checked:    streams[i].Checked(),
			Cut:        sr.cut,
			Exhausted:  sr.exhausted,
			Bound:      sr.bound,
			Latency:    sr.latency,
		}
		if a, ok := streams[i].(interface{ Addr() string }); ok {
			d.shards[i].Addr = a.Addr() // remote streams name their shard server
		}
	}
	return d
}

// searchGenerations renders the per-shard generation vector of a fan-out,
// aligned with c.shards (0 for shards that were empty when it opened) — the
// []uint64 twin of cache.go's searchesVersion.
func searchGenerations(byShard []Stream) []uint64 {
	out := make([]uint64, len(byShard))
	for i, s := range byShard {
		if s != nil {
			out[i] = s.Generation()
		}
	}
	return out
}

// versionGenerations decodes a cache version string (8-byte little-endian
// slot-map epoch, then one 8-byte generation per shard, cache.go) back into
// the generation vector, so cache-hit traces still report which index
// states answered. The epoch prefix is stripped — it is not a shard.
func versionGenerations(version string) []uint64 {
	if len(version) < 8 || len(version)%8 != 0 {
		return nil
	}
	version = version[8:]
	out := make([]uint64, len(version)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64([]byte(version[i*8 : i*8+8]))
	}
	return out
}
