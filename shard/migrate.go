package shard

// Live slot migration: move one slot's entities to another shard while
// ingest and queries keep running, without ever returning a non-exact
// answer.
//
// The protocol leans on three fences already in place:
//
//  1. The per-slot ingest fence (Cluster.slotMu). MigrateSlot holds the
//     write side for the whole move, so the slot's entity state is frozen —
//     the visit suffix shipped below is complete, and the first post-move
//     visit routes to the new owner because AddVisit/AddVisits resolve the
//     map only after acquiring the read side.
//  2. Atomic map publish (slotmap.go). Queries pin one map; a query that
//     pinned the old map keeps answering from the source's (complete,
//     frozen) copy, one that pins the new map answers from the target's —
//     the per-pull ownership filter picks exactly one copy either way.
//  3. The sticky touched flags. The target's local IDs for the shipped
//     entities are fresh, so its local order stops matching global arrival
//     order; flagging it (and the source, which now carries stale copies)
//     makes every future query run those shards' streams loose.
//
// State ships through the existing ingest primitives — VisitsOf on the
// source, one AddVisits batch on the target, then a Refresh to warm the
// target's index — not through the /shard/index snapshot POST: a snapshot
// load replaces a shard's whole index, which is a restart-time operation,
// while a migration must compose with whatever else the target is serving.
// The same code therefore moves slots between in-process DBs and remote
// shard servers alike, since both sit behind Backend.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"digitaltraces"
)

// MigrateSlot moves ownership of one slot to the target shard: ships every
// owned entity's full visit history to the target, warms the target's index,
// and publishes a new slot map under a bumped epoch. Ingest for the slot
// blocks for the duration (queries never block); concurrent queries stay
// bit-for-bit exact throughout — the property suite's standard. Moving a
// slot to its current owner is a no-op. On a failed ship the map is
// republished with the target marked touched and ownership unchanged: the
// target may hold a partial foreign copy, which the ownership filter hides
// forever, and the slot remains fully served by the source.
func (c *Cluster) MigrateSlot(slot, target int) error {
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("shard: MigrateSlot slot %d out of range [0,%d)", slot, NumSlots)
	}
	if target < 0 || target >= len(c.shards) {
		return fmt.Errorf("shard: MigrateSlot target shard %d out of range [0,%d)", target, len(c.shards))
	}
	c.slotMu[slot].Lock()
	defer c.slotMu[slot].Unlock()
	sm := c.slotmap()
	src := sm.assign[slot]
	if src == target {
		return nil
	}

	// Snapshot the slot's members from the registry, in global arrival
	// order. Any entity ingested after this point is blocked on the fence,
	// so the list is complete.
	type member struct {
		name string
		ord  int
	}
	var members []member
	c.mu.RLock()
	for name, o := range c.ord {
		if SlotOf(name) == slot {
			members = append(members, member{name, o})
		}
	}
	c.mu.RUnlock()
	sort.Slice(members, func(a, b int) bool { return members[a].ord < members[b].ord })

	var recs []digitaltraces.VisitRecord
	for _, m := range members {
		vs, err := c.shards[src].VisitsOf(m.name)
		if err != nil {
			// A registered name the source has never stored: the entity's
			// every visit failed validation. There is no state to move.
			if strings.Contains(err.Error(), "unknown entity") {
				continue
			}
			return fmt.Errorf("shard: migrating slot %d: reading %q from shard %d: %w", slot, m.name, src, err)
		}
		for _, v := range vs {
			recs = append(recs, digitaltraces.VisitRecord{Entity: m.name, Venue: v.Venue, Start: v.Start, End: v.End})
		}
	}
	if len(recs) > 0 {
		if _, err := c.shards[target].AddVisits(recs); err != nil {
			// The target may now hold a partial foreign copy; publish the
			// touched flag (ownership unchanged) so no future query trusts
			// the target's local order, then surface the failure.
			failed := sm.clone()
			failed.epoch++
			failed.touched[target] = true
			c.publishSlotMap(failed)
			return fmt.Errorf("shard: migrating slot %d: shipping %d visits to shard %d: %w", slot, len(recs), target, err)
		}
		// Warm the target so the move, not the next query, pays the fold.
		// This is NOT deferrable across moves: shipped visits can lie beyond
		// the target's indexed horizon, and only warmShard's full-rebuild
		// fallback extends it — a query-time lazy fold cannot, so a query
		// racing an unwarmed target could miss the shipped entities.
		c.warmShard(target)
	}

	next := sm.clone()
	next.epoch++
	next.assign[slot] = target
	if len(recs) > 0 {
		// The target's fresh local IDs break its order alignment; the source
		// keeps copies it no longer owns. An empty move disturbs neither.
		next.touched[src] = true
		next.touched[target] = true
	}
	c.publishSlotMap(next)
	return nil
}

// warmShard folds a shard's pending visits so the next query doesn't pay the
// fold. Warmth only — queries fold lazily per entity regardless — so a
// refresh failure is not an error, beyond falling back to a full build when
// the pending visits outgrew the indexed horizon.
func (c *Cluster) warmShard(ord int) {
	if err := c.shards[ord].Refresh(); err != nil {
		if errors.Is(err, digitaltraces.ErrBeyondHorizon) {
			c.shards[ord].BuildIndex()
		}
	}
}
