package shard

// Fuzz target for the threshold-pruned merge/termination logic.
//
// FuzzBoundedGather decodes arbitrary bytes into per-shard candidate lists
// (coarse degrees to force ties, colliding ordinals to force name
// tie-breaks, an optional excluded entity, and per-stream bound slack) and
// drives boundedGather over simulated streams that serve prefixes of those
// lists with admissible bounds. The invariant is the acceptance property in
// miniature: the pruned gather must return exactly what mergeEntries over
// the FULL lists returns — it never surfaces a result a full merge wouldn't,
// never drops or reorders one, for any list shape the decoder can produce.
//
// Run the smoke in CI with:
//
//	go test -run=^$ -fuzz=FuzzBoundedGather -fuzztime=10s ./shard/
//
// The seed corpus lives in testdata/fuzz/FuzzBoundedGather plus the f.Add
// seeds below.

import (
	"fmt"
	"reflect"
	"testing"

	"digitaltraces"
	"sort"
)

// gatherCase is a decoded fuzz input: full per-shard lists in shard-exact
// order, the query k, the excluded entity, per-stream bound slack, and
// per-stream looseness (a migration-touched shard: degree order only, ties
// in arbitrary — not global — order, no k+1 cap).
type gatherCase struct {
	lists   [][]entry
	k       int
	exclude string
	slack   []float64
	loose   []bool
}

// decodeGatherCase maps fuzz bytes onto a gather case. Every byte string
// decodes to something valid; short inputs produce small cases.
func decodeGatherCase(data []byte) gatherCase {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	g := gatherCase{
		k: 1 + int(next())%12,
	}
	n := 1 + int(next())%6
	g.lists = make([][]entry, n)
	g.slack = make([]float64, n)
	g.loose = make([]bool, n)
	for i := 0; i < n; i++ {
		m := int(next()) % 10
		// Slack in {0, 0.15, 0.3, 0.45}: bounds stay admissible (they only
		// ever overestimate), exercising termination under loose bounds.
		g.slack[i] = float64(int(next())%4) * 0.15
		g.loose[i] = next()%4 == 0
		for j := 0; j < m; j++ {
			g.lists[i] = append(g.lists[i], entry{
				m: digitaltraces.Match{
					// Unique names across all streams (entities live on
					// exactly one shard); coarse degree grid forces ties.
					Entity: fmt.Sprintf("s%de%d", i, j),
					Degree: float64(int(next())%8) / 7,
				},
				// Colliding ordinals are allowed: entryBefore falls back to
				// the name, and the invariant must hold under that too.
				rank: int(next()) % 32,
			})
		}
		if g.loose[i] {
			// A touched shard still emits in exact degree order, but its tie
			// order is its own (migration reassigned local IDs) — keep the
			// decode order within equal degrees, which entryBefore wouldn't.
			sort.SliceStable(g.lists[i], func(a, b int) bool {
				return g.lists[i][a].m.Degree > g.lists[i][b].m.Degree
			})
		} else {
			// Streams emit in shard-exact order.
			sort.SliceStable(g.lists[i], func(a, b int) bool {
				return entryBefore(g.lists[i][a], g.lists[i][b])
			})
		}
	}
	// Sometimes exclude an entity that exists, sometimes one that doesn't.
	switch next() % 4 {
	case 0:
		s := int(next()) % n
		if len(g.lists[s]) > 0 {
			g.exclude = g.lists[s][int(next())%len(g.lists[s])].m.Entity
		}
	case 1:
		g.exclude = "absent"
	}
	return g
}

// runBoundedGather drives boundedGather over simulated prefix streams with
// exact-plus-slack bounds, also returning the deepest prefix pulled per
// stream so tests can assert the pruning actually prunes.
func runBoundedGather(t *testing.T, g gatherCase) ([]digitaltraces.Match, []int) {
	t.Helper()
	pos := make([]int, len(g.lists))
	pull := func(reqs []pullReq) ([]pullResp, error) {
		resps := make([]pullResp, len(reqs))
		for j, r := range reqs {
			if r.want < 1 {
				t.Fatalf("pull requested want=%d", r.want)
			}
			l := g.lists[r.stream]
			p := pos[r.stream]
			end := p + r.want
			if end > len(l) {
				end = len(l)
			}
			es := append([]entry(nil), l[p:end]...)
			pos[r.stream] = end
			// Admissible bound on the remainder: the next (largest
			// remaining) degree, plus the stream's slack.
			bound := 0.0
			if end < len(l) {
				bound = l[end].m.Degree + g.slack[r.stream]
			}
			resps[j] = pullResp{entries: es, raw: len(es), bound: bound, live: end < len(l)}
		}
		return resps, nil
	}
	got, _, rep, err := boundedGather(len(g.lists), g.k, g.exclude, g.loose, pull)
	if err != nil {
		t.Fatalf("boundedGather: %v", err)
	}
	// The report's per-stream pulled counts must agree with the simulated
	// stream positions — the consistency the /traces endpoint exposes.
	for i := range g.lists {
		if rep.streams[i].pulled != pos[i] {
			t.Fatalf("stream %d report pulled %d, stream served %d", i, rep.streams[i].pulled, pos[i])
		}
		if rep.streams[i].cut == rep.streams[i].exhausted {
			t.Fatalf("stream %d: cut=%v exhausted=%v — exactly one must hold after a bounded gather",
				i, rep.streams[i].cut, rep.streams[i].exhausted)
		}
	}
	return got, pos
}

func FuzzBoundedGather(f *testing.F) {
	// Seeds that reach the interesting regimes: empty case, single stream,
	// many tied degrees, exclusion hits, zero-degree plateaus, large k.
	f.Add([]byte{})
	f.Add([]byte{3, 2, 4, 0, 7, 1, 7, 2, 6, 3, 4, 0, 5, 1, 5, 2, 3, 3, 0, 0})
	f.Add([]byte{0, 3, 2, 1, 0, 0, 0, 1, 5, 2, 7, 0, 7, 0, 7, 0, 4, 1, 0, 2, 1})
	f.Add([]byte{11, 4, 9, 3, 7, 7, 7, 7, 7, 7, 0, 0, 0, 0, 9, 0, 7, 7, 7, 7, 7, 7, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGatherCase(data)
		got, _ := runBoundedGather(t, g)
		// The oracle merges each stream's full list in global order: for a
		// loose stream the gather promises the answer *as if* the list were
		// globally sorted (that is exactly the repair the buffer re-sort
		// performs), while an aligned stream's list already is.
		wantLists := make([][]entry, len(g.lists))
		for i, l := range g.lists {
			wantLists[i] = append([]entry(nil), l...)
			if g.loose != nil && g.loose[i] {
				sort.SliceStable(wantLists[i], func(a, b int) bool {
					return entryBefore(wantLists[i][a], wantLists[i][b])
				})
			}
		}
		want, _ := mergeEntries(wantLists, g.k, g.exclude)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pruned gather diverged from full merge\ncase: %+v\ngot:  %v\nwant: %v", g, got, want)
		}
	})
}

// TestBoundedGatherPrunes pins the point of the whole exercise: with one hot
// stream owning the answer and cold streams whose bounds are immediately
// dominated, the cold streams are pulled once (the initial round) and never
// drained — while the answer stays the exact full merge.
func TestBoundedGatherPrunes(t *testing.T) {
	const n, k, cold = 4, 3, 40
	g := gatherCase{k: k, lists: make([][]entry, n), slack: make([]float64, n)}
	for j := 0; j < k+1; j++ {
		g.lists[0] = append(g.lists[0], entry{
			m:    digitaltraces.Match{Entity: fmt.Sprintf("hot%02d", j), Degree: 1 - float64(j)/100},
			rank: j,
		})
	}
	for i := 1; i < n; i++ {
		for j := 0; j < cold; j++ {
			g.lists[i] = append(g.lists[i], entry{
				m:    digitaltraces.Match{Entity: fmt.Sprintf("s%dc%02d", i, j), Degree: 0.1 - float64(j)/1000},
				rank: 100 + i*cold + j,
			})
		}
	}
	got, pos := runBoundedGather(t, g)
	want, _ := mergeEntries(g.lists, g.k, "")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := 1; i < n; i++ {
		if pos[i] >= cold {
			t.Errorf("cold stream %d fully drained (%d entries) — no pruning happened", i, pos[i])
		}
	}
	if pos[0] > k+1 {
		t.Errorf("hot stream pulled %d > k+1 = %d entries", pos[0], k+1)
	}
}

// TestBoundedGatherPullError verifies pull failures surface to the caller.
func TestBoundedGatherPullError(t *testing.T) {
	pull := func([]pullReq) ([]pullResp, error) { return nil, fmt.Errorf("shard down") }
	if _, _, _, err := boundedGather(2, 3, "", nil, pull); err == nil || err.Error() != "shard down" {
		t.Fatalf("err = %v, want shard down", err)
	}
}
