package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"digitaltraces"
)

const (
	citySide     = 8
	cityLevels   = 4
	cityEntities = 120
	cityDays     = 3
	cityHash     = 32
	citySeed     = 7
)

// testCity builds the reference single DB every cluster is compared against.
func testCity(t testing.TB) *digitaltraces.DB {
	t.Helper()
	db, err := digitaltraces.SyntheticCity(digitaltraces.CityConfig{
		Side: citySide, Levels: cityLevels, Entities: cityEntities, Days: cityDays, Seed: citySeed,
	}, digitaltraces.WithHashFunctions(cityHash))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// testCluster partitions the same city into n shards.
func testCluster(t testing.TB, src *digitaltraces.DB, n int) *Cluster {
	t.Helper()
	c, err := Partition(src, Config{
		Shards: n,
		NewShard: func(i int) (*digitaltraces.DB, error) {
			return digitaltraces.NewGridDB(citySide, cityLevels, digitaltraces.WithHashFunctions(cityHash))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func requireSameMatches(t *testing.T, label string, got, want []digitaltraces.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Entity != want[i].Entity || got[i].Degree != want[i].Degree {
			t.Fatalf("%s: match %d = %+v, want %+v (bit-identical)", label, i, got[i], want[i])
		}
	}
}

// TestClusterExactness is the acceptance invariant: for the same synthetic
// city and seed, a Cluster with N ∈ {1, 2, 4, 8} shards returns bit-identical
// top-k entities and degrees to a single DB — for entity queries, example
// queries, and batches.
func TestClusterExactness(t *testing.T) {
	db := testCity(t)
	if err := db.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	queries := []string{"entity-0", "entity-3", "entity-17", "entity-42", "entity-85", "entity-119"}
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c := testCluster(t, db, n)
			if err := c.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			if c.NumEntities() != db.NumEntities() {
				t.Fatalf("cluster has %d entities, source %d", c.NumEntities(), db.NumEntities())
			}
			for _, q := range queries {
				for _, k := range []int{1, 5, 10} {
					want, wantStats, err := db.TopK(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, qs, err := c.TopK(q, k)
					if err != nil {
						t.Fatal(err)
					}
					requireSameMatches(t, fmt.Sprintf("TopK(%s,%d)", q, k), got, want)
					if qs.Checked < len(got) || qs.PE < 0 || qs.PE > 1 || qs.Elapsed <= 0 {
						t.Errorf("TopK(%s,%d) stats implausible: %+v", q, k, qs)
					}
					// A 1-shard cluster runs the same search over the same
					// tree, so even Checked must match the single DB (the
					// self-check of the example path is subtracted).
					if n == 1 && qs.Checked != wantStats.Checked {
						t.Errorf("TopK(%s,%d) Checked = %d, single DB checked %d", q, k, qs.Checked, wantStats.Checked)
					}
				}
			}
			// Query by example, fan-out over all shards with no self-exclusion.
			example, err := db.VisitsOf("entity-9")
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := db.TopKByExample(example, 8)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := c.TopKByExample(example, 8)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, "TopKByExample", got, want)
			// Batch equals per-entity answers.
			batch, _, err := c.TopKBatch(queries, 5, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(queries) {
				t.Fatalf("batch returned %d results, want %d", len(batch), len(queries))
			}
			for _, q := range queries {
				want, _, err := db.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				requireSameMatches(t, "TopKBatch/"+q, batch[q], want)
			}
		})
	}
}

// TestClusterConcurrentIngest drives scatter-gather queries while a writer
// lane streams new visits through the router (run with -race). After the
// storm quiesces, the same extra visits replayed into a fresh single DB must
// still produce bit-identical answers.
func TestClusterConcurrentIngest(t *testing.T) {
	db := testCity(t)
	c := testCluster(t, db, 4)
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// Extra visits within the indexed horizon, one batch per round, in a
	// fixed order so ordinal assignment is deterministic.
	const rounds = 12
	batches := make([][]digitaltraces.VisitRecord, rounds)
	for r := range batches {
		for j := 0; j < 3; j++ {
			batches[r] = append(batches[r], digitaltraces.VisitRecord{
				Entity: fmt.Sprintf("late-%d-%d", r, j),
				Venue:  digitaltraces.VenueName((r*7 + j) % (citySide * citySide)),
				Start:  digitaltraces.TimeAt(r % 20),
				End:    digitaltraces.TimeAt(r%20 + 2),
			})
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	wg.Add(1)
	go func() { // single writer lane: arrival order stays deterministic
		defer wg.Done()
		for _, b := range batches {
			if _, err := c.AddVisits(b); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := fmt.Sprintf("entity-%d", (g*13+i)%cityEntities)
				ms, _, err := c.TopK(q, 5)
				if err != nil {
					errCh <- fmt.Errorf("TopK(%s): %w", q, err)
					return
				}
				for j := 1; j < len(ms); j++ {
					if ms[j].Degree > ms[j-1].Degree {
						errCh <- fmt.Errorf("TopK(%s) not sorted: %+v", q, ms)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Replay the same stream into the reference DB and compare, quiesced.
	for _, b := range batches {
		if _, err := db.AddVisits(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	if c.NumEntities() != db.NumEntities() {
		t.Fatalf("after ingest: cluster %d entities, source %d", c.NumEntities(), db.NumEntities())
	}
	for _, q := range []string{"entity-5", "entity-77", "late-0-0", "late-11-2"} {
		want, _, err := db.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.TopK(q, 7)
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, "post-ingest TopK "+q, got, want)
	}
}

// TestClusterMultiWriterRace: many writers race brand-new entities onto the
// shards (several landing on the same shard, with identical traces, i.e.
// guaranteed degree ties) while queries run — run with -race. Afterwards the
// registry, the shards and the merge must agree: every entity is queryable
// and tied same-shard entities come back in a deterministic order on
// repeated queries.
func TestClusterMultiWriterRace(t *testing.T) {
	db := testCity(t)
	c := testCluster(t, db, 4)
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 10
	var wg sync.WaitGroup
	errCh := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Identical trace for every racer: all pairwise degrees tie.
				name := fmt.Sprintf("racer-%d-%d", w, i)
				if err := c.AddVisit(name, "venue-1", digitaltraces.TimeAt(5), digitaltraces.TimeAt(7)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, _, err := c.TopK(fmt.Sprintf("entity-%d", (w*11+i)%cityEntities), 5); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := c.NumEntities(), cityEntities+writers*perWriter; got != want {
		t.Fatalf("NumEntities = %d, want %d", got, want)
	}
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Every racer ties with every other racer; repeated queries must return
	// the same deterministic tie order now that ingest has quiesced.
	first, _, err := c.TopK("racer-0-0", 10)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, _, err := c.TopK("racer-0-0", 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, "repeat query", again, first)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	grid := func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewGridDB(citySide, cityLevels)
	}
	if _, err := NewCluster(Config{Shards: 0, NewShard: grid}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewCluster(Config{Shards: 2}); err == nil {
		t.Error("nil NewShard accepted")
	}
	// A shard without an epoch cannot join a cluster.
	h := digitaltraces.NewHierarchy(2).AddPath("a", "v1").AddPath("a", "v2")
	if _, err := NewCluster(Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewDB(h)
	}}); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("epoch-less shards: err = %v, want epoch error", err)
	}
	// Mismatched epochs across shards are rejected.
	if _, err := NewCluster(Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewDB(h, digitaltraces.WithEpoch(time.Unix(int64(i)*3600, 0).UTC()))
	}}); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("mismatched epochs: err = %v, want epoch error", err)
	}
	// Mismatched time units are rejected.
	if _, err := NewCluster(Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewDB(h,
			digitaltraces.WithEpoch(time.Unix(0, 0).UTC()),
			digitaltraces.WithTimeUnit(time.Duration(i+1)*time.Hour))
	}}); err == nil || !strings.Contains(err.Error(), "unit") {
		t.Errorf("mismatched units: err = %v, want unit error", err)
	}
	// Partition rejects factories whose shards discretize differently from
	// the source (here: source anchored off the shards' Unix epoch).
	src, err := digitaltraces.NewGridDB(4, 3, digitaltraces.WithEpoch(time.Date(2020, 1, 1, 10, 30, 0, 0, time.UTC)))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddVisit("a", "venue-0", time.Date(2020, 1, 1, 10, 30, 0, 0, time.UTC), time.Date(2020, 1, 1, 11, 30, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(src, Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewGridDB(4, 3)
	}}); err == nil || !strings.Contains(err.Error(), "source epoch") {
		t.Errorf("Partition with mismatched epoch: err = %v, want source-epoch error", err)
	}

	// Pre-populated shards are rejected: the router must see every entity.
	if _, err := NewCluster(Config{Shards: 1, NewShard: func(i int) (*digitaltraces.DB, error) {
		db, err := digitaltraces.NewGridDB(4, 3)
		if err != nil {
			return nil, err
		}
		return db, db.AddVisit("stowaway", "venue-0", digitaltraces.TimeAt(0), digitaltraces.TimeAt(1))
	}}); err == nil || !strings.Contains(err.Error(), "pre-populated") {
		t.Errorf("pre-populated shard: err = %v, want pre-populated error", err)
	}
}

func TestClusterErrors(t *testing.T) {
	db := testCity(t)
	c := testCluster(t, db, 3)
	if _, _, err := c.TopK("ghost", 3); err == nil || !strings.Contains(err.Error(), "unknown entity") {
		t.Errorf("unknown entity: %v", err)
	}
	if _, _, err := c.TopK("entity-0", 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := c.TopKBatch(nil, 3, 2); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := c.TopKBatch([]string{"entity-0", "ghost"}, 3, 2); err == nil {
		t.Error("batch with unknown entity accepted")
	}
	if _, _, err := c.TopKByExample([]digitaltraces.Visit{{
		Venue: "atlantis", Start: digitaltraces.TimeAt(0), End: digitaltraces.TimeAt(1),
	}}, 3); err == nil {
		t.Error("unknown venue in example accepted")
	}
	// An empty cluster has nothing to index or query.
	empty, err := NewCluster(Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewGridDB(4, 3)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.BuildIndex(); err == nil {
		t.Error("empty cluster BuildIndex accepted")
	}
	if _, _, err := empty.TopKByExample([]digitaltraces.Visit{{
		Venue: "venue-0", Start: digitaltraces.TimeAt(0), End: digitaltraces.TimeAt(1),
	}}, 3); err == nil {
		t.Error("query on empty cluster accepted")
	}
}

// TestClusterAddVisitsPartialFailure pins the documented bulk-ingest
// semantics: per-shard prefixes are kept, the total stored count is
// returned, and the error names the smallest failing index in the caller's
// slice.
func TestClusterAddVisitsPartialFailure(t *testing.T) {
	c, err := NewCluster(Config{Shards: 2, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewGridDB(4, 3)
	}})
	if err != nil {
		t.Fatal(err)
	}
	visits := []digitaltraces.VisitRecord{
		{Entity: "a", Venue: "venue-0", Start: digitaltraces.TimeAt(0), End: digitaltraces.TimeAt(2)},
		{Entity: "b", Venue: "venue-1", Start: digitaltraces.TimeAt(1), End: digitaltraces.TimeAt(3)},
		{Entity: "a", Venue: "atlantis", Start: digitaltraces.TimeAt(2), End: digitaltraces.TimeAt(4)}, // fails
		{Entity: "b", Venue: "venue-2", Start: digitaltraces.TimeAt(3), End: digitaltraces.TimeAt(5)},
	}
	n, err := c.AddVisits(visits)
	if err == nil {
		t.Fatal("bad venue accepted")
	}
	if !strings.Contains(err.Error(), "visit 2") || !strings.Contains(err.Error(), "atlantis") {
		t.Errorf("error %q does not name failing index 2 and venue", err)
	}
	// a's shard kept 1 visit (the prefix before the failure); b's shard is
	// independent and kept both of its records → 3 stored in total.
	if n != 3 {
		t.Errorf("stored %d visits, want 3", n)
	}
	va, err := c.shards[c.owner("a")].VisitsOf("a")
	if err != nil || len(va) != 1 {
		t.Errorf("a has %d visits (%v), want 1", len(va), err)
	}
	vb, err := c.shards[c.owner("b")].VisitsOf("b")
	if err != nil || len(vb) != 2 {
		t.Errorf("b has %d visits (%v), want 2", len(vb), err)
	}
}

func TestClusterShardStats(t *testing.T) {
	db := testCity(t)
	c := testCluster(t, db, 4)
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	stats := c.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats has %d entries", len(stats))
	}
	entities, nodes := 0, 0
	for i, s := range stats {
		if s.Shard != i {
			t.Errorf("stat %d has Shard=%d", i, s.Shard)
		}
		if s.Entities == 0 || s.Index.Entities != s.Entities {
			t.Errorf("shard %d: %d routed entities, %d indexed", i, s.Entities, s.Index.Entities)
		}
		entities += s.Entities
		nodes += s.Index.Nodes
	}
	if entities != cityEntities {
		t.Errorf("shard entity counts sum to %d, want %d", entities, cityEntities)
	}
	agg := c.IndexStats()
	if agg.Entities != cityEntities || agg.Nodes != nodes || agg.MemoryBytes <= 0 {
		t.Errorf("aggregate IndexStats %+v inconsistent with per-shard sums", agg)
	}
	if c.NumVenues() != citySide*citySide || c.Levels() != cityLevels {
		t.Errorf("cluster shape: %d venues, %d levels", c.NumVenues(), c.Levels())
	}
}

// TestRouterDeterminism pins the routing function: stable across runs and
// uniform enough that no shard is starved on a realistic population.
func TestRouterDeterminism(t *testing.T) {
	if OwnerOf("entity-42", 8) != OwnerOf("entity-42", 8) {
		t.Fatal("router not deterministic")
	}
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		counts[OwnerOf(fmt.Sprintf("entity-%d", i), 8)]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d received no entities out of 1000", s)
		}
	}
}

// TestRefreshBeyondHorizon: a visit past a shard's indexed horizon is
// absorbed by Refresh rebuilding just that shard — no error surfaces and the
// entity is immediately queryable.
func TestRefreshBeyondHorizon(t *testing.T) {
	db := testCity(t)
	c := testCluster(t, db, 2)
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	far := digitaltraces.TimeAt(cityDays*24 + 1000)
	if err := c.AddVisit("wanderer", "venue-0", far, far.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Refresh(); err != nil {
		t.Fatalf("Refresh = %v, want self-healing per-shard rebuild", err)
	}
	if _, _, err := c.TopK("wanderer", 3); err != nil {
		t.Fatal(err)
	}
}

// TestClusterDirtyAggregationAndAutoRefresh: IndexStats sums per-shard dirty
// counts; shards built with digitaltraces.WithAutoRefresh fold their own
// partitions' dirt in the background; Close stops every shard's goroutine
// and is idempotent.
func TestClusterDirtyAggregationAndAutoRefresh(t *testing.T) {
	c, err := NewCluster(Config{Shards: 3, NewShard: func(i int) (*digitaltraces.DB, error) {
		return digitaltraces.NewGridDB(citySide, cityLevels,
			digitaltraces.WithHashFunctions(cityHash),
			digitaltraces.WithAutoRefresh(1, 0))
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var visits []digitaltraces.VisitRecord
	for e := 0; e < 30; e++ {
		visits = append(visits, digitaltraces.VisitRecord{
			Entity: fmt.Sprintf("entity-%d", e), Venue: "venue-0",
			Start: digitaltraces.TimeAt(e % 20), End: digitaltraces.TimeAt(e%20 + 2),
		})
	}
	if _, err := c.AddVisits(visits); err != nil {
		t.Fatal(err)
	}
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// New dirt lands on every shard; the aggregate must sum the per-shard
	// counts until the background policies fold it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.IndexStats()
		sum := 0
		for _, ss := range c.ShardStats() {
			sum += ss.Index.DirtyCount
		}
		if st.DirtyCount != sum {
			t.Fatalf("aggregate dirty %d != shard sum %d", st.DirtyCount, sum)
		}
		if st.DirtyCount == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-refresh never drained the cluster: %d dirty", st.DirtyCount)
		}
		time.Sleep(2 * time.Millisecond)
	}
	gen := c.IndexStats().Generation
	if _, err := c.AddVisits(visits[:9]); err != nil {
		t.Fatal(err)
	}
	for c.IndexStats().DirtyCount > 0 || c.IndexStats().Generation == gen {
		if time.Now().After(deadline) {
			t.Fatal("auto-refresh never folded the second batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
