package shard

// The slot map: ownership as a data structure instead of a formula.
//
// Entity placement used to be FNV-1a mod N baked into the router — the shard
// count could never change and a hot shard stayed hot forever. Routing is now
// two-level:
//
//	entity ──FNV-1a mod NumSlots──▶ slot ──SlotMap──▶ shard
//
// The first hop is a fixed pure function (SlotOf) with the same stability
// contract OwnerOf always had: any process computes it with no lookup. The
// second hop is a small versioned table the cluster owns: 256 slots → shard
// ordinals, published atomically under a monotonically increasing epoch.
// Rebalancing moves a slot's entities to another shard and republishes the
// table; nothing about the entity→slot hop ever changes, so a saved envelope,
// a remote shard server and a coordinator only need to agree on the table —
// 512 bytes — to agree on placement.
//
// # Exactness across publishes
//
// Every query pins one *SlotMap for its whole fan-out and filters each pulled
// candidate by that map's ownership (gather.go), so an entity mid-migration —
// physically present on both the old and the new shard — contributes exactly
// one copy to every answer: the copy its pinned map says is the owner.
// Ingest takes a per-slot read fence (Cluster.slotMu) and resolves the map
// after acquiring it, while a migration holds the slot's write fence across
// ship-and-publish — so the entity state a move ships is frozen, and no visit
// can land on the old owner after the new map is visible.
//
// # Touched shards
//
// The k+1 stream cap and the merge's same-shard tie argument rely on a
// shard's local ingest order matching the global arrival order restricted to
// that shard (merge.go). A migration target assigns fresh local IDs to the
// shipped entities, breaking that alignment permanently — so the map carries
// a sticky per-shard "touched" flag: queries treat a touched shard's stream
// as loose (no k+1 cap, buffer re-sorted under the global order; gather.go),
// which keeps answers bit-identical at a small pruning cost on exactly the
// shards that have absorbed or surrendered a migration.

import (
	"fmt"
	"sync/atomic"
)

// NumSlots is the fixed size of the slot space. Like the FNV constants it
// must never change: slots are the stable unit every envelope, shard server
// and coordinator agrees on. 256 slots give a 4-shard cluster 64 movable
// units each — fine-grained enough for skew work, small enough that the
// whole table is 512 bytes on the wire.
const NumSlots = 256

// SlotOf routes an entity name to a slot: 32-bit FNV-1a over the raw name
// bytes (offset basis 2166136261, prime 16777619) mod NumSlots. This is the
// stable half of routing — a pure function fixed across processes, platforms
// and Go versions, exactly the contract OwnerOf carries — so any client or
// shard server locates an entity's slot with no lookup, and only the small
// slot→shard table needs distributing.
func SlotOf(entity string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(entity); i++ {
		h ^= uint32(entity[i])
		h *= prime32
	}
	return int(h % NumSlots)
}

// SlotMap is one immutable version of the slot→shard assignment. The cluster
// publishes successive maps through an atomic pointer; readers pin one map
// for a whole operation and never observe a half-updated table.
type SlotMap struct {
	// epoch increases by one per publish. 0 is the pristine default map.
	epoch uint64
	// assign maps slot → shard ordinal.
	assign [NumSlots]int
	// touched marks shards whose local ingest order no longer matches the
	// global arrival order restricted to the shard (they absorbed a shipped
	// slot) or that may hold entries they do not own (they surrendered one,
	// or a ship into them failed partway). Sticky for the life of the
	// process: alignment, once broken, does not heal. len == shard count.
	touched []bool
}

// DefaultSlotMap is the epoch-0 assignment for n shards: slot s → s mod n.
// When n divides NumSlots this reproduces the legacy direct FNV-mod-N
// placement exactly ((h mod 256) mod n == h mod n), so pre-slot-map clusters
// of 1/2/4/8/… shards re-ingest onto identical shards.
func DefaultSlotMap(n int) *SlotMap {
	m := &SlotMap{touched: make([]bool, n)}
	for s := range m.assign {
		m.assign[s] = s % n
	}
	return m
}

// Owner returns the shard ordinal owning the entity under this map.
func (m *SlotMap) Owner(entity string) int { return m.assign[SlotOf(entity)] }

// Epoch returns the map's publish version.
func (m *SlotMap) Epoch() uint64 { return m.epoch }

// Assignment returns a copy of the slot→shard table.
func (m *SlotMap) Assignment() []int {
	out := make([]int, NumSlots)
	copy(out, m.assign[:])
	return out
}

// clone returns a mutable deep copy, for building the next version.
func (m *SlotMap) clone() *SlotMap {
	n := &SlotMap{epoch: m.epoch, assign: m.assign, touched: make([]bool, len(m.touched))}
	copy(n.touched, m.touched)
	return n
}

// isDefault reports whether the assignment is exactly DefaultSlotMap's for
// len(touched) shards with no shard touched — the only state a pre-slot-map
// (MSIGCMAP1) envelope may load into.
func (m *SlotMap) isDefault() bool {
	for s, sh := range m.assign {
		if sh != s%len(m.touched) {
			return false
		}
	}
	for _, t := range m.touched {
		if t {
			return false
		}
	}
	return true
}

// slotmap returns the cluster's current map. Callers that correlate several
// reads (route, then filter) must call once and keep the pointer — the map
// behind the pointer never mutates, only gets replaced.
func (c *Cluster) slotmap() *SlotMap { return c.slots.Load() }

// epochPusher is the optional backend surface for distributing the slot-map
// epoch to shard servers (shard/remote.Client implements it); shard servers
// piggyback the epoch on every response so a second, staler coordinator
// fails loudly instead of wrong-routing.
type epochPusher interface{ PushSlotEpoch(uint64) error }

// publishSlotMap swaps the serving map and distributes the new epoch to
// every remote shard, best-effort: the push is an anti-entropy signal for
// foreign coordinators, not a commit protocol — this coordinator's own
// routing switched the moment the pointer did.
func (c *Cluster) publishSlotMap(m *SlotMap) {
	c.slots.Store(m)
	for _, sh := range c.shards {
		if p, ok := sh.(epochPusher); ok {
			p.PushSlotEpoch(m.epoch) // best-effort; piggybacked state self-heals
		}
	}
}

// SlotEpoch returns the current slot-map epoch.
func (c *Cluster) SlotEpoch() uint64 { return c.slotmap().epoch }

// SlotAssignment returns a copy of the current slot→shard table, in slot
// order — the /stats slot table.
func (c *Cluster) SlotAssignment() []int { return c.slotmap().Assignment() }

// AssignSlots replaces the slot→shard assignment wholesale. Only an empty
// cluster (nothing ingested yet) may be re-assigned — entities already
// placed under the old map would be orphaned, which is MigrateSlot's job to
// do safely — so this is the bootstrap hook for engineered placements:
// benchmarks and smoke tests build deliberately skewed clusters, and a
// restored deployment re-creates the map its envelope recorded before
// re-ingesting. assign must have NumSlots entries, each a valid ordinal.
func (c *Cluster) AssignSlots(assign []int) error {
	if len(assign) != NumSlots {
		return fmt.Errorf("shard: AssignSlots needs %d entries, got %d", NumSlots, len(assign))
	}
	for s, sh := range assign {
		if sh < 0 || sh >= len(c.shards) {
			return fmt.Errorf("shard: AssignSlots slot %d → shard %d, cluster has %d shards", s, sh, len(c.shards))
		}
	}
	c.mu.RLock()
	populated := len(c.ord) > 0
	c.mu.RUnlock()
	if populated {
		return fmt.Errorf("shard: AssignSlots on a populated cluster — slots move with MigrateSlot once entities exist")
	}
	next := c.slotmap().clone()
	next.epoch++
	copy(next.assign[:], assign)
	c.publishSlotMap(next)
	return nil
}

// checkSlotEpoch fails when any shard has seen a newer slot map than this
// coordinator holds: another coordinator migrated slots, and routing by the
// stale table would send ingest to surrendered shards and filter answers
// under dead ownership. Shard epochs are read from the clients' piggybacked
// state (no round trips) *before* the local epoch, so a migration this
// coordinator is publishing concurrently can only make the check
// conservative, never a false positive.
func (c *Cluster) checkSlotEpoch() error {
	var newest uint64
	for _, sh := range c.shards {
		if se, ok := sh.(interface{ SlotEpoch() uint64 }); ok {
			if e := se.SlotEpoch(); e > newest {
				newest = e
			}
		}
	}
	if cur := c.slotmap().epoch; newest > cur {
		return fmt.Errorf("shard: a shard reports slot-map epoch %d but this coordinator holds %d — a newer coordinator has migrated slots; this one must be restarted with the current map", newest, cur)
	}
	return nil
}

// slotsOwned counts the slots assigned to each shard under the current map.
func (c *Cluster) slotsOwned() []int {
	m := c.slotmap()
	out := make([]int, len(c.shards))
	for _, sh := range m.assign {
		out[sh]++
	}
	return out
}

// slotsPtr exists so the Cluster struct literal in NewCluster stays tidy.
type slotsPtr = atomic.Pointer[SlotMap]
