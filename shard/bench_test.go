package shard

// Benchmarks comparing the single DB against entity-partitioned clusters:
// index build (the parallel-build win), single-query scatter-gather latency,
// and batch throughput. CI runs these once per push (-benchtime 1x) as a
// smoke test so regressions in the merge path fail loudly; for real numbers
// use cmd/bench, which also records the parallel critical path on machines
// with fewer cores than shards.
//
//	go test -bench 'Cluster' -benchmem ./shard

import (
	"fmt"
	"testing"

	"digitaltraces"
)

const (
	benchSide     = 8
	benchLevels   = 4
	benchEntities = 400
	benchDays     = 5
	benchHash     = 64
)

func benchCity(b *testing.B) *digitaltraces.DB {
	b.Helper()
	db, err := digitaltraces.SyntheticCity(digitaltraces.CityConfig{
		Side: benchSide, Levels: benchLevels, Entities: benchEntities, Days: benchDays, Seed: 1,
	}, digitaltraces.WithHashFunctions(benchHash))
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchCluster(b *testing.B, src *digitaltraces.DB, n int) *Cluster {
	b.Helper()
	c, err := Partition(src, Config{
		Shards: n,
		NewShard: func(i int) (*digitaltraces.DB, error) {
			return digitaltraces.NewGridDB(benchSide, benchLevels, digitaltraces.WithHashFunctions(benchHash))
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterBuild measures BuildIndex wall clock per cluster size
// (shards=1 ≈ the single-DB baseline plus routing overhead) and reports the
// parallel critical path — the wall clock on a machine with ≥ N cores — as
// a custom metric.
func BenchmarkClusterBuild(b *testing.B) {
	src := benchCity(b)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c := benchCluster(b, src, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.BuildIndex(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(c.IndexStats().BuildTime.Seconds(), "critical-path-s/op")
		})
	}
}

// BenchmarkClusterTopK measures one scatter-gather query end to end.
func BenchmarkClusterTopK(b *testing.B) {
	src := benchCity(b)
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c := benchCluster(b, src, n)
			if err := c.BuildIndex(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.TopK(fmt.Sprintf("entity-%d", i%benchEntities), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterTopKBatch measures batch throughput through the cluster
// worker pool (every query still fans out to all shards).
func BenchmarkClusterTopKBatch(b *testing.B) {
	src := benchCity(b)
	names := make([]string, 100)
	for i := range names {
		names[i] = fmt.Sprintf("entity-%d", i*3%benchEntities)
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c := benchCluster(b, src, n)
			if err := c.BuildIndex(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.TopKBatch(names, 10, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(names)), "queries/op")
		})
	}
}
