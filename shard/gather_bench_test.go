package shard

import (
	"fmt"
	"testing"

	"digitaltraces"
)

// benchCity builds the BENCH_sharding configuration once per benchmark run.
func gatherBenchCluster(b *testing.B, shards int) *Cluster {
	b.Helper()
	src, err := digitaltraces.SyntheticCity(digitaltraces.CityConfig{
		Side: 16, Levels: 4, Entities: 2000, Days: 7, Seed: 1,
	}, digitaltraces.WithHashFunctions(128))
	if err != nil {
		b.Fatal(err)
	}
	c, err := Partition(src, Config{
		Shards: shards,
		NewShard: func(int) (*digitaltraces.DB, error) {
			return digitaltraces.NewGridDB(16, 4, digitaltraces.WithHashFunctions(128))
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	return c
}

func benchQueries(c *Cluster, b *testing.B, topk func(string, int) ([]digitaltraces.Match, digitaltraces.QueryStats, error)) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("entity-%d", (i*37)%2000)
		if _, _, err := topk(name, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterTopKPruned(b *testing.B) {
	c := gatherBenchCluster(b, 8)
	benchQueries(c, b, c.TopK)
}

func BenchmarkClusterTopKNaive(b *testing.B) {
	c := gatherBenchCluster(b, 8)
	benchQueries(c, b, c.topKNaive)
}
