module digitaltraces

go 1.24
