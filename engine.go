package digitaltraces

import (
	"fmt"
	"io"
	"time"

	"digitaltraces/internal/obs"
	"digitaltraces/internal/trace"
)

// Engine is the query-serving contract shared by a single *DB and any
// composition of DBs (package shard's entity-partitioned Cluster). It covers
// everything the HTTP layer (package server) and batch tooling need: the
// three query modes, bulk ingest, index maintenance, and shape statistics.
//
// Every Engine implementation in this repository answers queries exactly:
// composing DBs must preserve the single-DB answer bit-for-bit (entities,
// degrees and order), so callers can swap implementations by scale without
// revalidating results.
type Engine interface {
	// TopK returns the k entities most closely associated with the named
	// entity, with exact degrees, plus query statistics.
	TopK(entity string, k int) ([]Match, QueryStats, error)
	// TopKByExample answers for a hypothetical entity described by visits.
	TopKByExample(visits []Visit, k int) ([]Match, QueryStats, error)
	// TopKBatch answers top-k for every named entity over a worker pool.
	TopKBatch(entities []string, k, workers int) (map[string][]Match, QueryStats, error)
	// AddVisits bulk-ingests visit records, returning how many were stored.
	// On error the count is authoritative and the error names the failing
	// record's index; which records around the failure were kept is
	// implementation-defined (a single DB keeps the prefix before the
	// failing record, a partitioned engine keeps each partition's prefix —
	// records after the failing index routed to other partitions may be
	// stored). Callers must not blindly re-send the suffix after a failure.
	AddVisits(visits []VisitRecord) (int, error)
	// BuildIndex (re)builds the index over all current visits.
	BuildIndex() error
	// Refresh folds visits added since the last build into the index,
	// failing with ErrBeyondHorizon when only a rebuild can absorb them;
	// partitioned implementations may instead absorb it internally by
	// rebuilding just the affected partition.
	Refresh() error
	// SaveIndex persists the serving index (signature digests, hash-family
	// scalars, entity names — not the visit data) to w, folding pending
	// dirt first so the snapshot covers everything ingested so far.
	SaveIndex(w io.Writer) (int64, error)
	// LoadIndex publishes a previously saved index over the engine's
	// re-ingested visit log — the warm-restart path that skips the
	// O(|E|·C·nh) rebuild. Entities resolve by name, and a log that drifted
	// from the snapshot's data is an error, never a silently wrong answer.
	LoadIndex(r io.Reader) error
	// NumEntities, NumVenues and Levels describe the data shape.
	NumEntities() int
	NumVenues() int
	Levels() int
	// IndexStats describes the built index (aggregated, for compositions).
	IndexStats() IndexStats
	// Tracer exposes the engine's query-trace ring — nil when tracing is
	// disabled (the default). All obs.Tracer methods are nil-receiver safe,
	// so callers use the result without checking.
	Tracer() *obs.Tracer
}

var _ Engine = (*DB)(nil)

// MappedPersister is the optional out-of-core persistence surface: engines
// that can write the memory-mappable MSIGMAP1 snapshot format and republish
// one straight off a read-only file mapping, skipping both the index rebuild
// and the visit re-ingest of the SaveIndex/LoadIndex warm-restart path.
// *DB and shard.Cluster implement it.
type MappedPersister interface {
	// SaveMappedIndex persists the serving index together with its sequence
	// data in the page-aligned MSIGMAP1 layout, folding pending dirt first.
	SaveMappedIndex(w io.Writer) (int64, error)
	// LoadMappedIndex maps the file at path read-only and serves queries
	// straight off it: restart cost is the signature replay plus lazy page
	// faults, and resident memory is bounded by the hot entities.
	LoadMappedIndex(path string) error
}

var _ MappedPersister = (*DB)(nil)

// Epoch returns the start of the observation horizon and whether it has been
// fixed yet — either by WithEpoch or by the first ingested visit. Engines
// that partition entities across several DBs need every member to share one
// epoch, or the same wall-clock visit would discretize to different base
// units on different members.
func (db *DB) Epoch() (time.Time, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch, db.epochSet
}

// TimeUnit returns the base temporal unit visits are discretized into.
func (db *DB) TimeUnit() time.Duration { return db.unit }

// VisitsOf returns the visits of an entity, with venue names and absolute
// times reconstructed from the DB's epoch and time unit. The reconstruction
// round-trips exactly: feeding the result to TopKByExample (or re-ingesting
// it under the same epoch and unit) reproduces the entity's stored ST-cells
// bit-for-bit. Package shard uses this to resolve a query entity on its home
// shard before fanning the query out by example.
//
// On a DB serving without a retained visit log (a mapped or bulk load), the
// recorded history is gone, so VisitsOf instead coalesces the entity's
// stored base ST-cells back into presence periods and appends any visits
// ingested since the load. That loses the original record boundaries but
// nothing the index ever saw — the result discretizes to the identical cell
// set, so every degree computed from it is unchanged.
func (db *DB) VisitsOf(entity string) ([]Visit, error) {
	db.mu.RLock()
	e, ok := db.names[entity]
	if !ok {
		db.mu.RUnlock()
		return nil, fmt.Errorf("digitaltraces: unknown entity %q", entity)
	}
	if !db.unionFold {
		defer db.mu.RUnlock()
		recs := db.visits[e]
		out := make([]Visit, len(recs))
		for i, r := range recs {
			out[i] = db.visitFromRecordLocked(r)
		}
		return out, nil
	}
	db.mu.RUnlock()
	// Union-fold mode: the full history is the serving snapshot's stored
	// cells plus everything ingested since the load — reading the snapshot
	// first keeps the union complete even against a concurrent fold (folds
	// never remove retained post-load visits).
	var seq *trace.Sequences
	if s := db.snap.Load(); s != nil {
		seq = s.store.Get(e)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Visit
	if seq != nil {
		for _, p := range seq.PresenceInstances(db.ix.Height()) {
			out = append(out, Visit{
				Venue: db.baseNames[db.ix.BaseOf(p.Unit)],
				Start: db.epoch.Add(time.Duration(p.Start) * db.unit),
				End:   db.epoch.Add(time.Duration(p.End) * db.unit),
			})
		}
	}
	for _, r := range db.visits[e] {
		out = append(out, db.visitFromRecordLocked(r))
	}
	return out, nil
}

// AllVisits exports every recorded visit, grouped by entity in first-ingest
// order (the order entity IDs were assigned), with absolute times
// reconstructed like VisitsOf. Replaying the result into an empty engine in
// slice order reproduces both the visit data and the entity insertion order
// — which fixes degree-tie-breaking — so it is the bulk re-partitioning path
// (shard.Partition) as well as a full logical dump.
func (db *DB) AllVisits() []VisitRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, recs := range db.visits {
		n += len(recs)
	}
	out := make([]VisitRecord, 0, n)
	for id, name := range db.byID {
		for _, r := range db.visits[trace.EntityID(id)] {
			v := db.visitFromRecordLocked(r)
			out = append(out, VisitRecord{Entity: name, Venue: v.Venue, Start: v.Start, End: v.End})
		}
	}
	return out
}

// visitFromRecordLocked converts a stored record back to wall-clock form;
// callers must hold mu (read or write).
func (db *DB) visitFromRecordLocked(r trace.Record) Visit {
	return Visit{
		Venue: db.baseNames[r.Base],
		Start: db.epoch.Add(time.Duration(r.Start) * db.unit),
		End:   db.epoch.Add(time.Duration(r.End) * db.unit),
	}
}
