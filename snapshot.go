package digitaltraces

// Build-aside snapshot machinery — the non-blocking index maintenance core.
//
// A DB serves queries from an immutable *snapshot published through an
// atomic.Pointer. Builders (BuildIndex, Refresh, and the query path's lazy
// escalation) construct the next snapshot entirely off to the side — from a
// visit view captured under the ingest lock — and then swap the pointer, so
// a multi-second rebuild never blocks a read: queries arriving while a build
// is in flight keep answering from the previous snapshot. See DESIGN.md
// "Concurrency model" for the full contract.

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"digitaltraces/internal/adm"
	"digitaltraces/internal/core"
	"digitaltraces/internal/parallel"
	"digitaltraces/internal/sighash"
	"digitaltraces/internal/storage"
	"digitaltraces/internal/trace"
)

// snapshot is one frozen, fully consistent index state: the sequence store,
// the MinSigTree over it, the degree measure, the indexed time horizon and
// the name table of every entity that existed at capture. A snapshot is
// immutable after publication — the tree is only ever read (core.Tree.TopK is
// verified read-only), the store is never Put into again, and byID is a
// length-capped prefix whose elements never change — so any number of queries
// search it lock-free while maintenance builds the next snapshot aside
// instead of mutating this one.
type snapshot struct {
	store   *trace.Store
	tree    *core.Tree
	measure adm.Measure
	horizon trace.Time
	byID    []string // entity name by EntityID, frozen at capture

	// pool is the storage buffer pool behind a mapped (or disk-backed)
	// store — nil for heap-served snapshots. The store reads through it;
	// it is threaded here so IndexStats can report hit rates, and so
	// refreshes can carry it forward through derived snapshots.
	pool *storage.Store

	generation  uint64        // 1 for the first build, +1 per swap
	buildTime   time.Duration // duration of the lineage's last full BuildIndex
	refreshTime time.Duration // duration of the last incremental Refresh (0 if this lineage ends in a full build)
	swappedAt   time.Time     // when this snapshot was published
}

// topK runs the exact search against this frozen snapshot. No locks: the
// tree, store, measure and name table are immutable after publication.
func (s *snapshot) topK(q *trace.Sequences, k int) ([]Match, QueryStats, error) {
	startT := time.Now()
	res, stats, err := s.tree.TopK(q, k, s.measure)
	if err != nil {
		return nil, QueryStats{}, err
	}
	out := make([]Match, len(res))
	for i, r := range res {
		out[i] = Match{Entity: s.byID[r.Entity], Degree: r.Degree}
	}
	return out, QueryStats{
		Checked: stats.Checked,
		PE:      stats.PE,
		Pruned:  stats.Pruned,
		Elapsed: time.Since(startT),
	}, nil
}

// view is the ingest-side state a builder captured under the ingest lock:
// frozen visit slice headers (appends only ever write past these lengths or
// reallocate, so the captured headers are stable), the name-table prefix, the
// per-entity visit count the new snapshot will cover (publish retires exactly
// that dirt — an entity that received further visits mid-build stays dirty),
// and the refresh work list.
type view struct {
	visits map[trace.EntityID][]trace.Record
	byID   []string
	folded map[trace.EntityID]int // entity → visit count folded into the build
	dirty  []trace.EntityID       // dirty entities at capture, ascending
}

// captureView snapshots the ingest side. dirtyOnly restricts the visit copy
// to dirty entities (the refresh path); a full capture covers every entity
// (the build path).
func (db *DB) captureView(dirtyOnly bool) view {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v := view{byID: db.byID[:len(db.byID):len(db.byID)]}
	if dirtyOnly {
		v.visits = make(map[trace.EntityID][]trace.Record, len(db.dirty))
		v.folded = make(map[trace.EntityID]int, len(db.dirty))
		v.dirty = make([]trace.EntityID, 0, len(db.dirty))
		for e := range db.dirty {
			recs := db.visits[e]
			v.visits[e] = recs[:len(recs):len(recs)]
			v.folded[e] = len(recs)
			v.dirty = append(v.dirty, e)
		}
		slices.Sort(v.dirty)
	} else {
		v.visits = make(map[trace.EntityID][]trace.Record, len(db.visits))
		v.folded = make(map[trace.EntityID]int, len(db.visits))
		for e, recs := range db.visits {
			v.visits[e] = recs[:len(recs):len(recs)]
			v.folded[e] = len(recs)
		}
	}
	return v
}

// hasDirty reports whether any entity has visits newer than the serving
// snapshot covers.
func (db *DB) hasDirty() bool {
	return db.dirtyCount() > 0
}

// dirtyCount returns the number of entities with visits the serving snapshot
// does not cover yet.
func (db *DB) dirtyCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.dirty)
}

// buildSnapshot constructs a full snapshot from a freshly captured visit view
// and publishes it. Callers must hold buildMu. Cost is O(|E|·C·nh) signature
// hashing plus tree insertion (Section 4.3) — all of it outside every lock
// queries touch.
func (db *DB) buildSnapshot() (*snapshot, error) {
	start := time.Now()
	if prev := db.snap.Load(); db.unionFold && prev != nil {
		return db.rebuildUnionSnapshot(prev, start)
	}
	v := db.captureView(false)
	if len(v.visits) == 0 {
		return nil, fmt.Errorf("digitaltraces: no visits to index")
	}
	var horizon trace.Time
	for _, recs := range v.visits {
		for _, r := range recs {
			if r.End > horizon {
				horizon = r.End
			}
		}
	}
	store := trace.NewStore(db.ix)
	ids := make([]trace.EntityID, 0, len(v.visits))
	for e := range v.visits {
		ids = append(ids, e)
	}
	slices.Sort(ids)
	for _, e := range ids {
		store.AddRecords(e, v.visits[e])
	}
	fam, err := sighash.NewFamily(db.ix, horizon, db.nh, db.seed)
	if err != nil {
		return nil, err
	}
	tree, err := core.Build(db.ix, fam, store, ids)
	if err != nil {
		return nil, err
	}
	measure, err := db.newMeasure()
	if err != nil {
		return nil, err
	}
	ns := &snapshot{
		store:     store,
		tree:      tree,
		measure:   measure,
		horizon:   horizon,
		byID:      v.byID,
		buildTime: time.Since(start),
	}
	return db.publish(ns, v), nil
}

// rebuildUnionSnapshot is the full-rebuild path for union-fold DBs (mapped or
// bulk loads whose visit log does not retain the folded history): the
// previous snapshot's store is the only complete record of each entity's
// cells, so the rebuild derives from it and unions the captured visits on
// top — exact because cell sets union idempotently, whether the log holds an
// entity's full history, only a suffix, or nothing at all. The horizon grows
// to cover the new visits and the whole tree re-hashes (the hash family is
// horizon-parameterized), reading sequences through the backing as needed;
// the buffer pool carries over. Callers must hold buildMu.
func (db *DB) rebuildUnionSnapshot(prev *snapshot, start time.Time) (*snapshot, error) {
	v := db.captureView(false)
	horizon := prev.horizon
	for _, recs := range v.visits {
		for _, r := range recs {
			if r.End > horizon {
				horizon = r.End
			}
		}
	}
	store := prev.store.Derive()
	ids := make([]trace.EntityID, 0, len(v.visits))
	for e := range v.visits {
		ids = append(ids, e)
	}
	slices.Sort(ids)
	merged := make([]*trace.Sequences, len(ids))
	parallel.For(len(ids), func(i int) {
		e := ids[i]
		merged[i] = trace.NewSequencesMerged(db.ix, e, v.visits[e], prev.store.Get(e))
	})
	for _, s := range merged {
		store.Put(s)
	}
	all := store.Entities()
	all = append([]trace.EntityID(nil), all...)
	slices.Sort(all)
	fam, err := sighash.NewFamily(db.ix, horizon, db.nh, db.seed)
	if err != nil {
		return nil, err
	}
	tree, err := core.Build(db.ix, fam, store, all)
	if err != nil {
		return nil, err
	}
	measure, err := db.newMeasure()
	if err != nil {
		return nil, err
	}
	ns := &snapshot{
		store:     store,
		tree:      tree,
		measure:   measure,
		horizon:   horizon,
		byID:      v.byID,
		pool:      prev.pool,
		buildTime: time.Since(start),
	}
	return db.publish(ns, v), nil
}

// refreshSnapshot folds the dirty entities into the next snapshot aside
// (Section 4.2.3 incremental maintenance) and publishes it. prev is never
// mutated, so queries pinned to it keep searching it bit-identically.
//
// The default path is copy-on-write: the store derives a child sharing every
// clean entity's sequences (trace.Store.Derive) and the tree path-copies
// only the nodes the dirty entities' signatures route through
// (core.Tree.Derive), so the whole refresh costs O(dirty) — independent of
// |E| — and swaps can run at very high frequency. WithCloneRefresh selects
// the pre-COW full-copy path (shallow store clone + full signature replay,
// O(|E|)); cmd/bench -scenario refresh measures one against the other.
//
// A dirty visit past prev's indexed horizon fails with ErrBeyondHorizon: the
// hash family is parameterized by the horizon, so only a full buildSnapshot
// can absorb it. Callers must hold buildMu.
func (db *DB) refreshSnapshot(prev *snapshot) (*snapshot, error) {
	start := time.Now()
	v := db.captureView(true)
	if len(v.dirty) == 0 {
		return prev, nil
	}
	for _, e := range v.dirty {
		for _, r := range v.visits[e] {
			if r.End > prev.horizon {
				return nil, ErrBeyondHorizon
			}
		}
	}
	var (
		store *trace.Store
		tree  *core.Tree
		err   error
	)
	// Repeated incremental updates leave group signatures conservatively
	// loose (each embedded removal may strand a too-small coordinate);
	// answers stay exact but pruning decays. Once the lineage has absorbed
	// more removals than it has entities, pay one full-copy refresh — the
	// replay recomputes tight signatures — then return to O(dirty) derives.
	// At most one O(|E|) replay per |E| updates keeps the amortized cost
	// O(1) per update.
	retighten := prev.tree.Removals() > prev.tree.Len()
	if db.cloneRefresh || retighten {
		store = prev.store.Clone()
		if tree, err = prev.tree.Clone(store); err != nil {
			return nil, err
		}
		for _, e := range v.dirty {
			if db.unionFold {
				store.Put(trace.NewSequencesMerged(db.ix, e, v.visits[e], prev.store.Get(e)))
			} else {
				store.AddRecords(e, v.visits[e])
			}
			if err := tree.Update(e); err != nil {
				return nil, err
			}
		}
	} else {
		store = prev.store.Derive()
		for _, s := range db.stageDirtySequences(v, prev) {
			store.Put(s)
		}
		if tree, err = prev.tree.Derive(store, v.dirty); err != nil {
			return nil, err
		}
	}
	ns := &snapshot{
		store:       store,
		tree:        tree,
		measure:     prev.measure,
		horizon:     prev.horizon,
		byID:        v.byID,
		pool:        prev.pool,
		buildTime:   prev.buildTime,
		refreshTime: time.Since(start),
	}
	return db.publish(ns, v), nil
}

// stageDirtySequences converts the dirty entities' captured visit histories
// into ST-cell sequences, in v.dirty order. Sequence building (cell
// expansion plus per-level sort-dedup) is the refresh path's second-largest
// cost after signature hashing and equally per-entity independent, so it
// fans out across a bounded worker pool; each worker touches only its own
// output slot. A union-fold DB's captured visits may be only a suffix of an
// entity's history (the rest lives in prev's store, possibly on disk), so
// they union into the previously folded sequence instead of replacing it.
func (db *DB) stageDirtySequences(v view, prev *snapshot) []*trace.Sequences {
	out := make([]*trace.Sequences, len(v.dirty))
	parallel.For(len(v.dirty), func(i int) {
		e := v.dirty[i]
		if db.unionFold {
			out[i] = trace.NewSequencesMerged(db.ix, e, v.visits[e], prev.store.Get(e))
		} else {
			out[i] = trace.NewSequences(db.ix, e, v.visits[e])
		}
	})
	return out
}

// publish swaps the new snapshot in and retires the dirt it folded. The
// ingest lock makes the swap and the dirty-set trim one atomic step against
// writers; builders are already serialized by buildMu, so the pointer swap
// itself never races another publisher.
func (db *DB) publish(ns *snapshot, v view) *snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	ns.generation = 1
	if prev := db.snap.Load(); prev != nil {
		ns.generation = prev.generation + 1
	}
	ns.swappedAt = time.Now()
	db.snap.Store(ns)
	for e, n := range v.folded {
		if db.dirty[e] && len(db.visits[e]) == n {
			delete(db.dirty, e)
		}
	}
	return ns
}

// newMeasure constructs the configured association degree measure.
func (db *DB) newMeasure() (adm.Measure, error) {
	if db.jaccard {
		return adm.NewJaccardADM(db.ix.Height())
	}
	return adm.NewPaperADM(db.ix.Height(), db.measureU, db.measureV)
}

// snapshotForQuery returns the snapshot a query answers over, preserving the
// lazy-freshness contract without ever stalling reads behind an in-flight
// build:
//
//   - index built and nothing dirty — the hot path: one atomic load plus one
//     shared-lock staleness check, then a lock-free search;
//   - stale index, no build running — the query becomes the builder: it folds
//     the dirt aside (escalating to a full rebuild when a dirty visit extends
//     past the indexed horizon, so one out-of-horizon ingest can never wedge
//     the query path) and swaps before answering — sequential callers always
//     read their own writes;
//   - stale index, build in flight — the query answers from the published
//     snapshot instead of waiting: the racing visits were never promised to
//     be visible (they are exactly the "visits arriving after the refresh
//     decision" of the old write-lock design) and the in-flight build
//     publishes them shortly;
//   - no index at all — first queries must wait for one to exist.
func (db *DB) snapshotForQuery() (*snapshot, error) {
	s := db.snap.Load()
	if s != nil && !db.hasDirty() {
		return s, nil
	}
	if s != nil {
		if !db.buildMu.TryLock() {
			return s, nil
		}
	} else {
		db.buildMu.Lock()
	}
	defer db.buildMu.Unlock()
	// Re-check under buildMu: the builder we waited on (or raced) may have
	// already published exactly what we need.
	s = db.snap.Load()
	if s == nil {
		return db.buildSnapshot()
	}
	if !db.hasDirty() {
		return s, nil
	}
	ns, err := db.refreshSnapshot(s)
	if err != nil {
		if errors.Is(err, ErrBeyondHorizon) {
			return db.buildSnapshot()
		}
		return nil, err
	}
	return ns, nil
}

// lookup resolves an entity name against a snapshot: the ID comes from the
// ingest registry (IDs are append-only, so a resolved ID stays valid forever)
// and the sequences from the snapshot's frozen store. Both failure modes name
// the entity: names never ingested, and names whose visits arrived after the
// queried snapshot was built (the next build or Refresh folds them in).
func (db *DB) lookup(s *snapshot, entity string) (*trace.Sequences, error) {
	db.mu.RLock()
	e, ok := db.names[entity]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("digitaltraces: unknown entity %q", entity)
	}
	return s.sequences(e, entity)
}

// sequences returns an entity's frozen sequences from this snapshot, or the
// canonical not-yet-indexed error naming the entity (shared by lookup and
// the batch path so the two can never drift apart).
func (s *snapshot) sequences(e trace.EntityID, name string) (*trace.Sequences, error) {
	q := s.store.Get(e)
	if q == nil {
		return nil, fmt.Errorf("digitaltraces: entity %q has no indexed visits yet (ingested after the serving snapshot was built; Refresh or the next query folds it in)", name)
	}
	return q, nil
}
